// LogHistogram: an HDR-style log-bucketed latency recorder for load
// clients. Unlike Registry histograms (a handful of hand-picked
// bounds, rendered into an exposition), LogHistogram covers 1µs–100s
// with ~5% relative bucket width, so a load run can report p99.9 with
// meaningful resolution without pre-guessing where the latency will
// land. Recording is one atomic add on a precomputed bucket index —
// safe for every worker goroutine of a load generator to share.
//
// Dist/Summarize live here too: the repeat-summary type lclbench
// serializes (obs is the shared stats home; lclbench aliases it to
// keep its report schema).

package obs

import (
	"math"
	"sync/atomic"
	"time"
)

const (
	logHistMin    = 1e-6  // 1µs: below this everything lands in bucket 0
	logHistMax    = 100.0 // 100s: above this is the overflow bucket
	logHistGrowth = 1.05  // ~5% relative error per bucket
)

var (
	logHistBuckets int
	logHistScale   float64 // 1 / ln(growth), precomputed for the hot path
	logHistBounds  []float64
)

func init() {
	logHistScale = 1 / math.Log(logHistGrowth)
	logHistBuckets = int(math.Ceil(math.Log(logHistMax/logHistMin)*logHistScale)) + 1
	logHistBounds = make([]float64, logHistBuckets)
	for i := range logHistBounds {
		logHistBounds[i] = logHistMin * math.Pow(logHistGrowth, float64(i+1))
	}
}

// LogHistogram records durations in seconds into fixed log-spaced
// buckets. The zero value is NOT ready; use NewLogHistogram. All
// methods are safe for concurrent use.
type LogHistogram struct {
	counts []atomic.Uint64 // len = logHistBuckets+1; last is >100s overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // seconds as float64 bits, CAS-accumulated
	max    atomic.Uint64 // seconds as float64 bits, CAS-raised
	min    atomic.Uint64 // seconds as float64 bits, CAS-lowered; MaxUint64 = unset
}

// NewLogHistogram returns an empty histogram.
func NewLogHistogram() *LogHistogram {
	h := &LogHistogram{counts: make([]atomic.Uint64, logHistBuckets+1)}
	h.min.Store(math.MaxUint64)
	return h
}

// Observe records one duration in seconds.
func (h *LogHistogram) Observe(seconds float64) {
	if h == nil || seconds < 0 || math.IsNaN(seconds) {
		return
	}
	i := 0
	if seconds > logHistMin {
		i = int(math.Log(seconds/logHistMin) * logHistScale)
		if i >= logHistBuckets {
			i = logHistBuckets
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+seconds)) {
			break
		}
	}
	// Observations are >= 0, so the zero initial state is a valid
	// identity for the running max.
	for {
		old := h.max.Load()
		if math.Float64frombits(old) >= seconds {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(seconds)) {
			break
		}
	}
	for {
		old := h.min.Load()
		if old != math.MaxUint64 && math.Float64frombits(old) <= seconds {
			break
		}
		if h.min.CompareAndSwap(old, math.Float64bits(seconds)) {
			break
		}
	}
}

// ObserveDuration records one time.Duration.
func (h *LogHistogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations.
func (h *LogHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations in seconds.
func (h *LogHistogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns the mean observation in seconds (0 when empty).
func (h *LogHistogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Max returns the largest observation in seconds (0 when empty).
func (h *LogHistogram) Max() float64 {
	if h == nil || h.Count() == 0 {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// Min returns the smallest observation in seconds (0 when empty).
func (h *LogHistogram) Min() float64 {
	if h == nil || h.Count() == 0 {
		return 0
	}
	v := h.min.Load()
	if v == math.MaxUint64 {
		return 0
	}
	return math.Float64frombits(v)
}

// Quantile estimates the q-quantile in seconds with the shared
// bucket-interpolation estimator. With ~5% bucket growth the estimate
// is within ~5% of the true value for anything inside [1µs, 100s].
func (h *LogHistogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return QuantileFromBuckets(logHistBounds, counts, total, q)
}

// Snapshot returns the histogram's current state in the shared
// snapshot form (Counts one longer than Bounds; last is overflow).
func (h *LogHistogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Bounds: logHistBounds,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		snap.Counts[i] = h.counts[i].Load()
		snap.Count += snap.Counts[i]
	}
	snap.Sum = h.Sum()
	return snap
}

// Dist summarizes the repeats of one measured quantity (mean, sample
// standard deviation, min, and the raw samples). It is the summary
// form lclbench reports serialize.
type Dist struct {
	Mean    float64   `json:"mean"`
	Std     float64   `json:"std"`
	Min     float64   `json:"min"`
	Samples []float64 `json:"samples"`
}

// Summarize folds samples into a Dist. Empty input yields a zero Dist
// with Min 0 (not +Inf) so the JSON stays finite.
func Summarize(samples []float64) Dist {
	if len(samples) == 0 {
		return Dist{}
	}
	d := Dist{Samples: samples, Min: math.Inf(1)}
	for _, s := range samples {
		d.Mean += s
		d.Min = math.Min(d.Min, s)
	}
	d.Mean /= float64(len(samples))
	for _, s := range samples {
		d.Std += (s - d.Mean) * (s - d.Mean)
	}
	d.Std = math.Sqrt(d.Std / float64(len(samples)))
	return d
}
