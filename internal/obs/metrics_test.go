package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeConcurrent hammers the atomic instruments from many
// goroutines; run under -race this doubles as a data-race check, and
// the final values check that no update was lost.
func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_level", "level")
	h := r.Histogram("test_lat", "lat", []float64{1, 10, 100})

	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 200))
			}
		}()
	}
	wg.Wait()

	if got, want := c.Value(), uint64(goroutines*perG); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got, want := g.Value(), float64(goroutines*perG); got != want {
		t.Errorf("gauge = %v, want %v", got, want)
	}
	if got, want := h.Count(), uint64(goroutines*perG); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	// Sum of j%200 over perG iterations, times goroutines.
	var per float64
	for j := 0; j < perG; j++ {
		per += float64(j % 200)
	}
	if got, want := h.Sum(), per*goroutines; got != want {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
}

// TestNilInstruments checks every instrument is nil-receiver safe — the
// property uninstrumented hot paths rely on.
func TestNilInstruments(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

// TestHistogramQuantile checks the bucket-interpolation estimator on a
// known distribution.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_q", "q", []float64{10, 20, 30, 40})
	// 100 observations uniform over (0, 40]: 25 per bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.4)
	}
	if got := h.Quantile(0.5); math.Abs(got-20) > 1 {
		t.Errorf("p50 = %v, want ~20", got)
	}
	if got := h.Quantile(0.95); math.Abs(got-38) > 1 {
		t.Errorf("p95 = %v, want ~38", got)
	}
	// Overflow observations clamp to the largest finite bound.
	h.Observe(1e9)
	if got := h.Quantile(0.9999); got != 40 {
		t.Errorf("overflow quantile = %v, want clamp to 40", got)
	}
}

// TestWritePrometheusGolden pins the exact exposition output: families
// sorted by name, HELP/TYPE headers, label rendering, cumulative
// histogram buckets with _sum and _count.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last_total", "Sorted last.").Add(3)
	v := r.CounterVec("aa_reqs_total", "Requests.", "method", "route")
	v.With("GET", "/x").Inc()
	v.With("POST", "/y").Add(2)
	r.Gauge("mm_depth", "Depth.").Set(2.5)
	h := r.Histogram("hh_lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_reqs_total Requests.
# TYPE aa_reqs_total counter
aa_reqs_total{method="GET",route="/x"} 1
aa_reqs_total{method="POST",route="/y"} 2
# HELP hh_lat_seconds Latency.
# TYPE hh_lat_seconds histogram
hh_lat_seconds_bucket{le="0.1"} 1
hh_lat_seconds_bucket{le="1"} 2
hh_lat_seconds_bucket{le="+Inf"} 3
hh_lat_seconds_sum 5.55
hh_lat_seconds_count 3
# HELP mm_depth Depth.
# TYPE mm_depth gauge
mm_depth 2.5
# HELP zz_last_total Sorted last.
# TYPE zz_last_total counter
zz_last_total 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCollectFamilies checks sampled families emit at scrape time.
func TestCollectFamilies(t *testing.T) {
	r := NewRegistry()
	n := 0
	r.CounterFunc("cf_total", "Sampled.", func() float64 { n++; return float64(n) })
	r.CollectGauges("cg", "Sampled labeled.", []string{"shard"},
		func(emit func([]string, float64)) {
			emit([]string{"0"}, 1)
			emit([]string{"1"}, 2)
		})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"cf_total 1\n", `cg{shard="0"} 1` + "\n", `cg{shard="1"} 2` + "\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cf_total 2\n") {
		t.Errorf("second scrape should re-sample: %s", b.String())
	}
}

// TestRegistryIdempotentAndConflicts: identical re-registration returns
// the same instrument; a conflicting signature panics.
func TestRegistryIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "first")
	b := r.Counter("dup_total", "second help ignored")
	a.Inc()
	if b.Value() != 1 {
		t.Error("idempotent registration must return the same counter")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("conflicting kind re-registration must panic")
			}
		}()
		r.Gauge("dup_total", "now a gauge")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("conflicting label re-registration must panic")
			}
		}()
		r.CounterVec("dup_total", "now labeled", "x")
	}()
}

// TestLabelEscaping pins backslash/quote/newline escaping in label
// values.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "esc", "v").With("a\\b\"c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{v="a\\b\"c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped sample %q missing from:\n%s", want, b.String())
	}
}
