package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// finishedTrace builds a finished trace with a given decider and total
// duration (duration is forced by back-dating the start).
func finishedTrace(id, decider string, dur time.Duration) *Trace {
	tr := NewTrace(id, "POST", "/v1/classify")
	tr.start = time.Now().Add(-dur)
	tr.SetDecider(decider)
	tr.Finish(200)
	return tr
}

// TestTraceSpanOrdering: spans recorded out of order come back sorted
// by start offset, and a span's offset/duration are consistent.
func TestTraceSpanOrdering(t *testing.T) {
	tr := NewTrace("", "POST", "/v1/classify")
	base := tr.start
	// Record in reverse start order: later stage first.
	tr.Record("compute", base.Add(2*time.Millisecond))
	tr.Record("fingerprint", base.Add(1*time.Millisecond))
	tr.Record("decode", base)
	tr.Finish(200)

	v := tr.View()
	var names []string
	for _, s := range v.Spans {
		names = append(names, s.Name)
	}
	want := []string{"decode", "fingerprint", "compute"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("span order = %v, want %v", names, want)
	}
	if v.Spans[0].StartMS != 0 {
		t.Errorf("first span start = %v, want 0", v.Spans[0].StartMS)
	}
	if v.Spans[2].StartMS < 2 {
		t.Errorf("compute start = %vms, want >= 2ms", v.Spans[2].StartMS)
	}
	if v.Status != 200 || v.DurationMS <= 0 {
		t.Errorf("finish not reflected: status=%d duration=%v", v.Status, v.DurationMS)
	}
}

// TestNilTrace: the whole trace API is nil-receiver safe.
func TestNilTrace(t *testing.T) {
	var tr *Trace
	tr.Record("x", time.Now())
	tr.SetDecider("cycles")
	tr.Finish(200)
	if tr.ID() != "" {
		t.Error("nil trace ID must be empty")
	}
	var ring *TraceRing
	ring.Add(tr)
	if ring.Snapshot() != nil {
		t.Error("nil ring snapshot must be nil")
	}
}

// TestTraceRingOverflow: a full ring drops the oldest traces and
// Snapshot returns newest first.
func TestTraceRingOverflow(t *testing.T) {
	ring := NewTraceRing(4)
	for i := 0; i < 10; i++ {
		ring.Add(finishedTrace(fmt.Sprintf("trace-%02d", i), "cycles", time.Millisecond))
	}
	views := ring.Snapshot()
	if len(views) != 4 {
		t.Fatalf("snapshot size = %d, want 4", len(views))
	}
	for i, want := range []string{"trace-09", "trace-08", "trace-07", "trace-06"} {
		if views[i].ID != want {
			t.Errorf("views[%d].ID = %s, want %s", i, views[i].ID, want)
		}
	}
}

// TestTraceRingConcurrent: writers appending while readers snapshot.
// Under -race this pins the ring's lock-free claim; structurally, every
// snapshot is bounded by the capacity and contains only finished,
// non-nil views.
func TestTraceRingConcurrent(t *testing.T) {
	ring := NewTraceRing(32)
	const writers, perWriter, readers = 8, 500, 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ring.Add(finishedTrace(fmt.Sprintf("w%d-%d", w, i), "cycles", time.Microsecond))
			}
		}(w)
	}
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				views := ring.Snapshot()
				if len(views) > 32 {
					t.Errorf("snapshot size %d exceeds capacity 32", len(views))
					return
				}
				for _, v := range views {
					if v.ID == "" || v.Status != 200 {
						t.Errorf("snapshot contains unfinished view %+v", v)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if got := ring.Snapshot(); len(got) != 32 {
		t.Errorf("final snapshot size = %d, want full ring of 32", len(got))
	}
}

// TestTracezFilters drives the /debug/tracez handler's decider, min_ms,
// and limit query parameters.
func TestTracezFilters(t *testing.T) {
	ring := NewTraceRing(16)
	ring.Add(finishedTrace("slow-cycles", "cycles", 50*time.Millisecond))
	ring.Add(finishedTrace("fast-cycles", "cycles", time.Millisecond))
	ring.Add(finishedTrace("slow-trees", "trees", 80*time.Millisecond))
	h := TracezHandler(ring)

	get := func(query string) tracezResponse {
		t.Helper()
		req := httptest.NewRequest("GET", "/debug/tracez"+query, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d", query, rec.Code)
		}
		var out tracezResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("GET %s: %v", query, err)
		}
		return out
	}

	if out := get(""); out.Count != 3 {
		t.Errorf("unfiltered count = %d, want 3", out.Count)
	}
	out := get("?decider=cycles")
	if out.Count != 2 {
		t.Errorf("decider filter count = %d, want 2", out.Count)
	}
	for _, v := range out.Traces {
		if v.Decider != "cycles" {
			t.Errorf("decider filter leaked %s", v.ID)
		}
	}
	out = get("?min_ms=20")
	if out.Count != 2 {
		t.Errorf("min_ms filter count = %d, want 2", out.Count)
	}
	for _, v := range out.Traces {
		if v.DurationMS < 20 {
			t.Errorf("min_ms filter leaked %s (%vms)", v.ID, v.DurationMS)
		}
	}
	if out := get("?limit=1"); out.Count != 1 || out.Traces[0].ID != "slow-trees" {
		t.Errorf("limit=1 = %+v, want just the newest (slow-trees)", out.Traces)
	}
	req := httptest.NewRequest("GET", "/debug/tracez?min_ms=bogus", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad min_ms status = %d, want 400", rec.Code)
	}
}

// TestMiddleware checks the end-to-end request pipeline: request-ID
// minting and echo, metrics, and trace publication.
func TestMiddleware(t *testing.T) {
	set := NewSet()
	set.Logger = NopLogger()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := TraceFrom(r.Context())
		if tr == nil {
			t.Error("handler context missing trace")
		} else {
			start := time.Now()
			tr.Record("work", start)
			tr.SetDecider("cycles")
		}
		w.WriteHeader(http.StatusTeapot)
	})
	h := Middleware(inner, set)

	// Minted ID on a bare request.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/classify", nil))
	if rec.Header().Get("X-Request-Id") == "" {
		t.Error("middleware must mint an X-Request-Id")
	}
	// Caller-supplied ID is propagated.
	rec = httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/classify", nil)
	req.Header.Set("X-Request-Id", "caller-chosen-id")
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got != "caller-chosen-id" {
		t.Errorf("X-Request-Id = %q, want caller-chosen-id", got)
	}

	views := set.Traces.Snapshot()
	if len(views) != 2 {
		t.Fatalf("ring has %d traces, want 2", len(views))
	}
	newest := views[0]
	if newest.ID != "caller-chosen-id" || newest.Status != http.StatusTeapot ||
		newest.Decider != "cycles" || len(newest.Spans) != 1 || newest.Spans[0].Name != "work" {
		t.Errorf("trace view = %+v", newest)
	}

	var b strings.Builder
	if err := set.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `lcl_http_requests_total{method="POST",route="/v1/classify",status="418"} 2`) {
		t.Errorf("request counter missing:\n%s", out)
	}
	if !strings.Contains(out, `lcl_http_request_seconds_count{route="/v1/classify"} 2`) {
		t.Errorf("latency histogram missing:\n%s", out)
	}
	if !strings.Contains(out, "lcl_http_in_flight_requests 0") {
		t.Errorf("in-flight gauge should settle at 0:\n%s", out)
	}
}

// TestNormalizeRoute pins the bounded-cardinality route table.
func TestNormalizeRoute(t *testing.T) {
	cases := map[string]string{
		"/v1/classify":           "/v1/classify",
		"/v1/classify/batch":     "/v1/classify/batch",
		"/v1/census/3":           "/v1/census/{k}",
		"/v1/census/paths/2":     "/v1/census/paths/{k}",
		"/v1/jobs":               "/v1/jobs",
		"/v1/jobs/j000001":       "/v1/jobs/{id}",
		"/v1/jobs/j07/events":    "/v1/jobs/{id}/events",
		"/v1/proof/a1b2c3d4e5":   "/v1/proof/{fingerprint}",
		"/v1/admin/snapshot":     "/v1/admin/snapshot",
		"/healthz":               "/healthz",
		"/statsz":                "/statsz",
		"/metricsz":              "/metricsz",
		"/debug/tracez":          "/debug/tracez",
		"/totally/unknown/path":  "other",
		"/":                      "other",
		"/v1":                    "other",
		"/v1/jobs/a/b/events":    "other", // extra segment must not match {id}/events
		"/v1/census/3/extra":     "other",
		"/v1/proof/a/b":          "other",
		"/v1/classify/batch/own": "other",
	}
	for path, want := range cases {
		if got := NormalizeRoute(path); got != want {
			t.Errorf("NormalizeRoute(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestNormalizeRouteCardinality: high-cardinality request streams —
// per-job event streams, proof fingerprints, junk — must collapse onto
// a fixed label set, or every scrape grows with traffic.
func TestNormalizeRouteCardinality(t *testing.T) {
	labels := map[string]bool{}
	for i := 0; i < 1000; i++ {
		for _, path := range []string{
			fmt.Sprintf("/v1/jobs/j%06d", i),
			fmt.Sprintf("/v1/jobs/j%06d/events", i),
			fmt.Sprintf("/v1/proof/%08x", i*2654435761),
			fmt.Sprintf("/v1/census/%d", i),
			fmt.Sprintf("/v1/census/paths/%d", i),
			fmt.Sprintf("/junk/%d/deep/%d", i, i*7),
			fmt.Sprintf("/v1/%d", i),
		} {
			labels[NormalizeRoute(path)] = true
		}
	}
	want := map[string]bool{
		"/v1/jobs/{id}":           true,
		"/v1/jobs/{id}/events":    true,
		"/v1/proof/{fingerprint}": true,
		"/v1/census/{k}":          true,
		"/v1/census/paths/{k}":    true,
		"other":                   true,
	}
	if len(labels) != len(want) {
		t.Fatalf("7000 requests produced %d route labels %v, want exactly %v", len(labels), labels, want)
	}
	for l := range labels {
		if !want[l] {
			t.Errorf("unexpected route label %q", l)
		}
	}
}
