package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestLogHistogramBasics(t *testing.T) {
	h := NewLogHistogram()
	for _, v := range []float64{0.001, 0.010, 0.100} {
		h.Observe(v)
	}
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}
	if got := h.Sum(); math.Abs(got-0.111) > 1e-12 {
		t.Errorf("sum = %v, want 0.111", got)
	}
	if got := h.Mean(); math.Abs(got-0.037) > 1e-12 {
		t.Errorf("mean = %v, want 0.037", got)
	}
	if h.Min() != 0.001 || h.Max() != 0.100 {
		t.Errorf("min/max = %v/%v, want 0.001/0.100", h.Min(), h.Max())
	}
	// ~5% bucket growth: every quantile estimate lands within one
	// bucket (6%) of the true value.
	if got := h.Quantile(0.5); math.Abs(got-0.010)/0.010 > 0.06 {
		t.Errorf("p50 = %v, want ~0.010", got)
	}
	h.ObserveDuration(50 * time.Millisecond)
	if h.Count() != 4 {
		t.Errorf("count after ObserveDuration = %d, want 4", h.Count())
	}
}

// TestLogHistogramAccuracy: the relative error of the quantile
// estimate over a broad sample stays within the bucket growth factor.
func TestLogHistogramAccuracy(t *testing.T) {
	h := NewLogHistogram()
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Log-uniform over 100µs..1s, the realistic latency band.
		v := 1e-4 * math.Pow(1e4, rng.Float64())
		samples = append(samples, v)
		h.Observe(v)
	}
	exact := func(q float64) float64 {
		s := append([]float64(nil), samples...)
		for i := range s {
			for j := i + 1; j < len(s); j++ {
				if s[j] < s[i] {
					s[i], s[j] = s[j], s[i]
				}
			}
		}
		return s[int(q*float64(len(s)))]
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got, want := h.Quantile(q), exact(q)
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("q=%v: estimate %v vs exact %v (rel err %.2f)", q, got, want, rel)
		}
	}
}

func TestLogHistogramEdges(t *testing.T) {
	h := NewLogHistogram()
	h.Observe(-1)         // ignored
	h.Observe(math.NaN()) // ignored
	if h.Count() != 0 {
		t.Errorf("count after invalid observations = %d, want 0", h.Count())
	}
	h.Observe(0)    // below range: lands in bucket 0
	h.Observe(1e-9) // ditto
	h.Observe(1e6)  // above range: overflow bucket
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}
	if h.Max() != 1e6 {
		t.Errorf("max = %v, want 1e6", h.Max())
	}
	if h.Min() != 0 {
		t.Errorf("min = %v, want 0", h.Min())
	}
	// Overflow quantiles clamp to the largest finite bound (~100s), so
	// a run dominated by timeouts still reports a finite p99.
	if got := h.Quantile(0.99); got <= 0 || math.IsInf(got, 1) {
		t.Errorf("overflow p99 = %v, want finite positive", got)
	}
	snap := h.Snapshot()
	if snap.Count != 3 || len(snap.Counts) != len(snap.Bounds)+1 {
		t.Errorf("snapshot = count %d, %d counts for %d bounds",
			snap.Count, len(snap.Counts), len(snap.Bounds))
	}
	if snap.Counts[len(snap.Counts)-1] != 1 {
		t.Errorf("overflow bucket = %d, want 1", snap.Counts[len(snap.Counts)-1])
	}
}

func TestLogHistogramNil(t *testing.T) {
	var h *LogHistogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 ||
		h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil LogHistogram must read as empty")
	}
}

// TestLogHistogramConcurrent hammers one histogram from many
// goroutines; run under -race this proves the recorder is safe to
// share across load-generator workers, and the totals must balance.
func TestLogHistogramConcurrent(t *testing.T) {
	h := NewLogHistogram()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Observe(rng.Float64() * 0.1)
				if i%100 == 0 {
					_ = h.Quantile(0.99) // concurrent reads
					_ = h.Snapshot()
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Errorf("count = %d, want %d", h.Count(), workers*perWorker)
	}
	snap := h.Snapshot()
	var total uint64
	for _, c := range snap.Counts {
		total += c
	}
	if total != workers*perWorker {
		t.Errorf("bucket total = %d, want %d", total, workers*perWorker)
	}
	if mean := h.Mean(); mean <= 0 || mean >= 0.1 {
		t.Errorf("mean = %v, want in (0, 0.1)", mean)
	}
}

func TestSummarize(t *testing.T) {
	d := Summarize([]float64{1, 2, 3})
	if d.Mean != 2 || d.Min != 1 {
		t.Errorf("mean/min = %v/%v, want 2/1", d.Mean, d.Min)
	}
	if want := math.Sqrt(2.0 / 3.0); math.Abs(d.Std-want) > 1e-12 {
		t.Errorf("std = %v, want %v", d.Std, want)
	}
	if len(d.Samples) != 3 {
		t.Errorf("samples = %v", d.Samples)
	}
	empty := Summarize(nil)
	if empty.Mean != 0 || empty.Std != 0 || empty.Min != 0 || empty.Samples != nil {
		t.Errorf("Summarize(nil) = %+v, want zero Dist", empty)
	}
}
