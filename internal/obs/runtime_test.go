package obs

import (
	"math"
	"runtime"
	runtimemetrics "runtime/metrics"
	"strings"
	"testing"

	"repro/internal/obs/promtext"
)

// scrapeHistogram registers-and-scrapes r, returning the named
// histogram child (unlabeled) parsed back out of the exposition.
func scrapeHistogram(t *testing.T, r *Registry, name string) promtext.HistogramSeries {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	fams, err := promtext.Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	for _, f := range fams {
		if f.Name != name {
			continue
		}
		hists := f.Histograms()
		if len(hists) != 1 {
			t.Fatalf("%s has %d children, want 1", name, len(hists))
		}
		return hists[0]
	}
	t.Fatalf("family %s not in exposition", name)
	return promtext.HistogramSeries{}
}

// TestRegisterRuntime: every runtime family lands in the exposition
// with plausible live values, and double registration is harmless.
func TestRegisterRuntime(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	RegisterRuntime(r) // idempotent, like all obs registration

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, fam := range []string{
		"lcl_go_goroutines",
		"lcl_go_heap_bytes",
		"lcl_go_heap_goal_bytes",
		"lcl_go_gc_cycles_total",
		"lcl_go_alloc_bytes_total",
		"lcl_go_cgo_calls_total",
		"lcl_go_gc_pause_seconds_count",
		"lcl_go_sched_latency_seconds_count",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("exposition missing %s:\n%s", fam, out)
		}
	}
	fams, err := promtext.Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("runtime exposition does not parse: %v", err)
	}
	vals := promtext.Values(fams)
	if vals["lcl_go_goroutines"] < 1 {
		t.Errorf("goroutines = %v, want >= 1", vals["lcl_go_goroutines"])
	}
	if vals["lcl_go_heap_bytes"] <= 0 {
		t.Errorf("heap bytes = %v, want > 0", vals["lcl_go_heap_bytes"])
	}
}

// TestGCPauseHistogramMonotone: runtime histogram counts are cumulative
// process counters, so a forced GC cycle must only grow them — the
// property counter-diffing load clients depend on.
func TestGCPauseHistogramMonotone(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)

	before := scrapeHistogram(t, r, "lcl_go_gc_pause_seconds")
	runtime.GC()
	runtime.GC()
	after := scrapeHistogram(t, r, "lcl_go_gc_pause_seconds")

	if after.Count <= before.Count {
		t.Errorf("GC pause count %d -> %d, want strictly increasing after forced GC",
			before.Count, after.Count)
	}
	// Per-bucket monotonicity: cumulative counts at each shared bound
	// never decrease. Both scrapes share the fixed RuntimeBuckets layout.
	if len(before.Counts) != len(after.Counts) {
		t.Fatalf("bucket layout changed between scrapes: %d vs %d",
			len(before.Counts), len(after.Counts))
	}
	var cumBefore, cumAfter uint64
	for i := range before.Counts {
		cumBefore += before.Counts[i]
		cumAfter += after.Counts[i]
		if cumAfter < cumBefore {
			t.Errorf("bucket %d cumulative count shrank: %d -> %d", i, cumBefore, cumAfter)
		}
	}
	if p99 := after.Quantile(0.99); p99 <= 0 || p99 > 1 {
		t.Errorf("GC pause p99 = %vs, want in (0, 1s]", p99)
	}
}

// TestFoldRuntimeHistogram: counts land in the fixed bucket holding the
// runtime bucket's upper edge, open-ended edges don't poison the sum.
func TestFoldRuntimeHistogram(t *testing.T) {
	h := &runtimemetrics.Float64Histogram{
		Counts:  []uint64{2, 3, 5},
		Buckets: []float64{math.Inf(-1), 2e-6, 3e-4, math.Inf(1)},
	}
	bounds := []float64{1e-6, 1e-5, 1e-3}
	snap := foldRuntimeHistogram(h, bounds)
	if snap.Count != 10 {
		t.Errorf("count = %d, want 10", snap.Count)
	}
	// Upper edges: 2e-6 -> bucket le=1e-5 (idx 1); 3e-4 -> le=1e-3
	// (idx 2); +Inf -> overflow (idx 3).
	want := []uint64{0, 2, 3, 5}
	for i := range want {
		if snap.Counts[i] != want[i] {
			t.Errorf("counts = %v, want %v", snap.Counts, want)
			break
		}
	}
	if math.IsInf(snap.Sum, 0) || math.IsNaN(snap.Sum) {
		t.Errorf("sum = %v, want finite", snap.Sum)
	}
	if snap.Sum <= 0 {
		t.Errorf("sum = %v, want > 0", snap.Sum)
	}
}

// TestRegisterBuildInfo: the constant-1 info gauge carries the Go
// toolchain version and whatever module/VCS version is available.
func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	version, goVersion := RegisterBuildInfo(r)
	if version == "" {
		t.Error("version label empty")
	}
	if goVersion != runtime.Version() {
		t.Errorf("go version = %q, want %q", goVersion, runtime.Version())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "lcl_build_info{") ||
		!strings.Contains(out, `go_version="`+runtime.Version()+`"`) {
		t.Errorf("build info gauge missing or unlabeled:\n%s", out)
	}
	fams, err := promtext.Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("build info exposition does not parse: %v", err)
	}
	for k, v := range promtext.Values(fams) {
		if strings.HasPrefix(k, "lcl_build_info{") && v != 1 {
			t.Errorf("%s = %v, want 1", k, v)
		}
	}
}

// TestReadRuntimeInfo: the /statsz snapshot reports a live process.
func TestReadRuntimeInfo(t *testing.T) {
	runtime.GC()
	info := ReadRuntimeInfo()
	if info.Goroutines < 1 {
		t.Errorf("goroutines = %d, want >= 1", info.Goroutines)
	}
	if info.HeapBytes == 0 {
		t.Error("heap bytes = 0, want > 0")
	}
	if info.HeapGoalBytes == 0 {
		t.Error("heap goal = 0, want > 0")
	}
	if info.GCCycles == 0 {
		t.Error("gc cycles = 0 after forced GC")
	}
	if info.GCPauseP99MS < 0 {
		t.Errorf("gc pause p99 = %v, want >= 0", info.GCPauseP99MS)
	}
}
