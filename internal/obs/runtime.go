// The Go runtime collector: system-level gauges and histograms sourced
// from runtime/metrics at scrape time, so /metricsz answers "what is
// the *process* doing under load" — GC pauses, scheduler latency, heap
// pressure, goroutine population — next to the request-level families.
// Everything here is sampled (zero cost off the scrape path), and
// registration is a no-op for any runtime/metrics name the running
// toolchain does not support.

package obs

import (
	"math"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
)

// RuntimeBuckets is the fixed bucket layout runtime histograms are
// re-bucketed onto: 1µs to 1s, roughly logarithmic. runtime/metrics
// histograms carry hundreds of toolchain-defined buckets whose layout
// may change between Go versions; folding them onto a fixed layout
// keeps scrape size bounded and the series stable. Counts stay
// monotone under the fold, so Prometheus-style rate/quantile math
// works unchanged.
var RuntimeBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1,
}

// RegisterRuntime registers the runtime collector into r:
//
//	lcl_go_goroutines              gauge      /sched/goroutines
//	lcl_go_heap_bytes              gauge      /memory/classes/heap/objects
//	lcl_go_heap_goal_bytes         gauge      /gc/heap/goal (next-GC target)
//	lcl_go_gc_cycles_total         counter    /gc/cycles/total
//	lcl_go_alloc_bytes_total       counter    /gc/heap/allocs
//	lcl_go_cgo_calls_total         counter    runtime.NumCgoCall
//	lcl_go_gc_pause_seconds        histogram  /sched/pauses/total/gc
//	lcl_go_sched_latency_seconds   histogram  /sched/latencies
//
// Safe to call more than once on the same registry (idempotent, like
// all obs registration).
func RegisterRuntime(r *Registry) {
	runtimeGauge(r, "lcl_go_goroutines",
		"Live goroutines.", "/sched/goroutines:goroutines")
	runtimeGauge(r, "lcl_go_heap_bytes",
		"Bytes of live heap objects plus not-yet-reclaimed dead objects.",
		"/memory/classes/heap/objects:bytes")
	runtimeGauge(r, "lcl_go_heap_goal_bytes",
		"Heap size target of the next GC cycle.", "/gc/heap/goal:bytes")
	runtimeCounter(r, "lcl_go_gc_cycles_total",
		"Completed GC cycles.", "/gc/cycles/total:gc-cycles")
	runtimeCounter(r, "lcl_go_alloc_bytes_total",
		"Cumulative bytes allocated on the heap.", "/gc/heap/allocs:bytes")
	r.CounterFunc("lcl_go_cgo_calls_total",
		"Cgo calls made by the process.",
		func() float64 { return float64(runtime.NumCgoCall()) })
	runtimeHistogram(r, "lcl_go_gc_pause_seconds",
		"Stop-the-world GC pause durations, re-bucketed onto a fixed layout.",
		"/sched/pauses/total/gc:seconds")
	runtimeHistogram(r, "lcl_go_sched_latency_seconds",
		"Goroutine scheduling latency (runnable to running), re-bucketed onto a fixed layout.",
		"/sched/latencies:seconds")
}

// runtimeSupported reports whether the running toolchain exports the
// runtime/metrics name.
func runtimeSupported(name string) bool {
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	return s[0].Value.Kind() != metrics.KindBad
}

// runtimeValue reads one scalar runtime metric as a float64.
func runtimeValue(name string) float64 {
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	switch s[0].Value.Kind() {
	case metrics.KindUint64:
		return float64(s[0].Value.Uint64())
	case metrics.KindFloat64:
		return s[0].Value.Float64()
	default:
		return 0
	}
}

func runtimeGauge(r *Registry, name, help, metric string) {
	if !runtimeSupported(metric) {
		return
	}
	r.GaugeFunc(name, help, func() float64 { return runtimeValue(metric) })
}

func runtimeCounter(r *Registry, name, help, metric string) {
	if !runtimeSupported(metric) {
		return
	}
	r.CounterFunc(name, help, func() float64 { return runtimeValue(metric) })
}

func runtimeHistogram(r *Registry, name, help, metric string) {
	if !runtimeSupported(metric) {
		return
	}
	r.HistogramFunc(name, help, func() HistogramSnapshot {
		s := []metrics.Sample{{Name: metric}}
		metrics.Read(s)
		if s[0].Value.Kind() != metrics.KindFloat64Histogram {
			return HistogramSnapshot{Bounds: RuntimeBuckets, Counts: make([]uint64, len(RuntimeBuckets)+1)}
		}
		return foldRuntimeHistogram(s[0].Value.Float64Histogram(), RuntimeBuckets)
	})
}

// foldRuntimeHistogram re-buckets a runtime/metrics histogram onto the
// fixed bounds: each runtime bucket's count lands in the fixed bucket
// containing its upper edge (the conservative choice — a pause is
// reported at least as large as it was). Sum is approximated from
// bucket midpoints; runtime histograms carry no exact sum.
func foldRuntimeHistogram(h *metrics.Float64Histogram, bounds []float64) HistogramSnapshot {
	snap := HistogramSnapshot{Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		snap.Count += n
		// Midpoint for the approximate sum; clamp the open-ended edges.
		mid := (lo + hi) / 2
		switch {
		case math.IsInf(hi, 1) && math.IsInf(lo, -1):
			mid = 0
		case math.IsInf(hi, 1):
			mid = lo
		case math.IsInf(lo, -1):
			mid = hi
		}
		snap.Sum += mid * float64(n)
		// Place by upper edge.
		j := 0
		for j < len(bounds) && hi > bounds[j] {
			j++
		}
		snap.Counts[j] += n
	}
	return snap
}

// RuntimeInfo is the compact runtime snapshot surfaced in /statsz next
// to the engine counters (the /metricsz runtime families carry the full
// distributions).
type RuntimeInfo struct {
	Goroutines    int     `json:"goroutines"`
	HeapBytes     uint64  `json:"heap_bytes"`
	HeapGoalBytes uint64  `json:"heap_goal_bytes"`
	GCCycles      uint64  `json:"gc_cycles"`
	GCPauseP99MS  float64 `json:"gc_pause_p99_ms"`
}

// ReadRuntimeInfo samples the runtime for /statsz-style reporting.
func ReadRuntimeInfo() RuntimeInfo {
	info := RuntimeInfo{
		Goroutines:    runtime.NumGoroutine(),
		HeapBytes:     uint64(runtimeValue("/memory/classes/heap/objects:bytes")),
		HeapGoalBytes: uint64(runtimeValue("/gc/heap/goal:bytes")),
		GCCycles:      uint64(runtimeValue("/gc/cycles/total:gc-cycles")),
	}
	s := []metrics.Sample{{Name: "/sched/pauses/total/gc:seconds"}}
	metrics.Read(s)
	if s[0].Value.Kind() == metrics.KindFloat64Histogram {
		snap := foldRuntimeHistogram(s[0].Value.Float64Histogram(), RuntimeBuckets)
		info.GCPauseP99MS = QuantileFromBuckets(snap.Bounds, snap.Counts, snap.Count, 0.99) * 1e3
	}
	return info
}

// RegisterBuildInfo registers the lcl_build_info gauge — the standard
// constant-1 info-metric idiom, labeled with the module version (VCS
// revision when the module version is unset, as in plain `go build`)
// and the Go toolchain — and returns the labels so startup logs can
// repeat them. Run artifacts and scrapes carry it, so every recorded
// latency is attributable to the binary that produced it.
func RegisterBuildInfo(r *Registry) (version, goVersion string) {
	version = "unknown"
	goVersion = runtime.Version()
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			version = v
		} else {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" && s.Value != "" {
					version = s.Value
					if len(version) > 12 {
						version = version[:12]
					}
				}
			}
		}
	}
	r.GaugeVec("lcl_build_info",
		"Constant 1, labeled with the binary's module/VCS version and Go toolchain.",
		"version", "go_version").With(version, goVersion).Set(1)
	return version, goVersion
}
