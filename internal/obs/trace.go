// Request tracing: a per-request Trace accumulates stage spans as the
// request moves through the pipeline (decode → fingerprint → memo →
// compute → memo-put → encode), and finished traces are published into
// a lock-free ring buffer served by /debug/tracez.
//
// The tracing API is nil-receiver safe throughout: code paths without
// an active trace (direct library calls, benchmarks) call the same
// methods on a nil *Trace and pay only a nil check — no allocation, no
// time syscalls (callers guard their time.Now with `if tr != nil`).

package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one named stage of a traced request, as an offset from the
// trace start plus a duration.
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_us"`
	Dur   time.Duration `json:"duration_us"`
}

// Trace is one request's trace record. Create with NewTrace, record
// stages with Record, close with Finish, publish with TraceRing.Add.
// Spans may be recorded concurrently (batch items fan out across
// worker goroutines); span order is by start offset at snapshot time.
type Trace struct {
	id     string
	method string
	route  string
	start  time.Time
	seq    uint64 // assigned by the ring at publish

	mu      sync.Mutex
	decider string
	status  int
	dur     time.Duration
	spans   []Span
}

// NewTrace starts a trace. An empty id generates a fresh one.
func NewTrace(id, method, route string) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	return &Trace{id: id, method: method, route: route, start: time.Now()}
}

// NewTraceID returns a fresh 16-hex-digit request ID.
func NewTraceID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// ID returns the trace's request ID ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Record appends a span named name that started at start and ends now.
// No-op on a nil trace.
func (t *Trace) Record(name string, start time.Time) {
	if t == nil {
		return
	}
	offset := start.Sub(t.start)
	if offset < 0 {
		offset = 0
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: offset, Dur: time.Since(start)})
	t.mu.Unlock()
}

// SetDecider tags the trace with the decider that served it (for the
// tracez decider filter). No-op on a nil trace.
func (t *Trace) SetDecider(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.decider = name
	t.mu.Unlock()
}

// Finish seals the trace with the response status and total duration.
func (t *Trace) Finish(status int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.status = status
	t.dur = time.Since(t.start)
	t.mu.Unlock()
}

// TraceView is an immutable snapshot of a finished trace, JSON-shaped
// for /debug/tracez.
type TraceView struct {
	ID         string     `json:"id"`
	Method     string     `json:"method"`
	Route      string     `json:"route"`
	Status     int        `json:"status"`
	Decider    string     `json:"decider,omitempty"`
	Start      time.Time  `json:"start"`
	DurationMS float64    `json:"duration_ms"`
	Spans      []SpanView `json:"spans,omitempty"`
}

// SpanView is a span rendered in milliseconds.
type SpanView struct {
	Name       string  `json:"name"`
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
}

// View snapshots the trace (spans sorted by start offset).
func (t *Trace) View() TraceView {
	t.mu.Lock()
	v := TraceView{
		ID:         t.id,
		Method:     t.method,
		Route:      t.route,
		Status:     t.status,
		Decider:    t.decider,
		Start:      t.start,
		DurationMS: ms(t.dur),
		Spans:      make([]SpanView, len(t.spans)),
	}
	spans := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	for i, s := range spans {
		v.Spans[i] = SpanView{Name: s.Name, StartMS: ms(s.Start), DurationMS: ms(s.Dur)}
	}
	return v
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// DefaultTraceBuffer is the ring capacity when NewTraceRing gets 0.
const DefaultTraceBuffer = 256

// TraceRing is a lock-free ring buffer of the most recent finished
// traces. Add is wait-free on the fast path (one atomic increment plus
// one atomic pointer store); Snapshot reads every slot without blocking
// writers. Overwritten slots simply drop the oldest trace.
type TraceRing struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
}

// NewTraceRing builds a ring holding the last n traces (0 selects
// DefaultTraceBuffer).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = DefaultTraceBuffer
	}
	return &TraceRing{slots: make([]atomic.Pointer[Trace], n)}
}

// Add publishes a finished trace, evicting the oldest when full. No-op
// on a nil ring or trace.
func (r *TraceRing) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	seq := r.next.Add(1)
	t.seq = seq
	r.slots[(seq-1)%uint64(len(r.slots))].Store(t)
}

// Snapshot returns views of the buffered traces, newest first.
func (r *TraceRing) Snapshot() []TraceView {
	if r == nil {
		return nil
	}
	traces := make([]*Trace, 0, len(r.slots))
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil {
			traces = append(traces, t)
		}
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i].seq > traces[j].seq })
	out := make([]TraceView, len(traces))
	for i, t := range traces {
		out[i] = t.View()
	}
	return out
}

// traceKey is the context key for the active trace.
type traceKey struct{}

// ContextWithTrace returns ctx carrying the trace.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the active trace, or nil. Safe on any context.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
