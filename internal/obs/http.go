// The HTTP face of the observability layer: the Set bundle one process
// shares across components, the middleware that meters every request
// and carries the trace through the handler stack, and the /metricsz
// and /debug/tracez handlers.

package obs

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Set bundles the observability surface one process shares: the metrics
// registry, the recent-trace ring, the base structured logger, and the
// slow-request threshold. Components receive a *Set and register their
// instruments into Registry; the middleware and the debug handlers
// serve it.
type Set struct {
	Registry *Registry
	Traces   *TraceRing
	Logger   *slog.Logger
	// SlowThreshold is the request duration above which the middleware
	// logs a slow-request warning with the trace's span breakdown
	// (0 disables slow logging).
	SlowThreshold time.Duration
}

// DefaultSlowThreshold is the slow-request log threshold NewSet
// installs.
const DefaultSlowThreshold = 500 * time.Millisecond

// NewSet builds a Set with a fresh registry, a DefaultTraceBuffer-sized
// ring, the default slog logger, and DefaultSlowThreshold.
func NewSet() *Set {
	return &Set{
		Registry:      NewRegistry(),
		Traces:        NewTraceRing(0),
		Logger:        slog.Default(),
		SlowThreshold: DefaultSlowThreshold,
	}
}

// httpMetrics are the middleware's instruments, registered once per
// Set.
type httpMetrics struct {
	requests *CounterVec // method, route, status
	latency  *HistogramVec
	inFlight *Gauge
	slow     *Counter
}

func newHTTPMetrics(r *Registry) *httpMetrics {
	return &httpMetrics{
		requests: r.CounterVec("lcl_http_requests_total",
			"HTTP requests served, by method, route, and status.",
			"method", "route", "status"),
		latency: r.HistogramVec("lcl_http_request_seconds",
			"HTTP request latency in seconds, by route.",
			LatencyBuckets, "route"),
		inFlight: r.Gauge("lcl_http_in_flight_requests",
			"HTTP requests currently being served."),
		slow: r.Counter("lcl_http_slow_requests_total",
			"Requests slower than the slow-request threshold."),
	}
}

// statusWriter captures the response status while passing Flusher
// through (SSE streams flow through the middleware).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer when it supports flushing
// (required by the SSE job-event streams).
func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Middleware wraps next with the full request observability pipeline:
// accept or mint the X-Request-Id, start a Trace and carry it in the
// context, meter method/route/status/latency, publish the finished
// trace into the ring, log one access line per request (debug level),
// and log a warning with the span breakdown for requests slower than
// set.SlowThreshold. A nil set returns next unchanged.
func Middleware(next http.Handler, set *Set) http.Handler {
	if set == nil {
		return next
	}
	m := newHTTPMetrics(set.Registry)
	logger := Component(set.Logger, "http")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := NormalizeRoute(r.URL.Path)
		tr := NewTrace(r.Header.Get("X-Request-Id"), r.Method, route)
		w.Header().Set("X-Request-Id", tr.ID())
		sw := &statusWriter{ResponseWriter: w}
		m.inFlight.Add(1)

		next.ServeHTTP(sw, r.WithContext(ContextWithTrace(r.Context(), tr)))

		m.inFlight.Add(-1)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		tr.Finish(sw.status)
		view := tr.View()
		dur := time.Duration(view.DurationMS * float64(time.Millisecond))
		m.requests.With(r.Method, route, strconv.Itoa(sw.status)).Inc()
		m.latency.With(route).Observe(dur.Seconds())
		set.Traces.Add(tr)
		logger.Debug("request",
			"id", view.ID, "method", r.Method, "route", route,
			"status", sw.status, "duration_ms", view.DurationMS)
		if set.SlowThreshold > 0 && dur >= set.SlowThreshold {
			m.slow.Inc()
			logger.Warn("slow request",
				"id", view.ID, "method", r.Method, "route", route,
				"status", sw.status, "duration_ms", view.DurationMS,
				"decider", view.Decider, "spans", spanSummary(view.Spans))
		}
	})
}

// spanSummary renders spans compactly for log lines:
// "decode=0.1ms memo-get=0.0ms compute=312.4ms".
func spanSummary(spans []SpanView) string {
	var b strings.Builder
	for i, s := range spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.Name)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(s.DurationMS, 'f', 1, 64))
		b.WriteString("ms")
	}
	return b.String()
}

// NormalizeRoute maps a request path onto a bounded route label:
// dynamic segments (census k, job IDs, proof fingerprints) collapse to
// placeholders so metric cardinality stays fixed, and unknown paths
// collapse to "other". Matching is by exact segment shape — a path with
// extra segments (`/v1/jobs/a/b/events`) is "other", not a spurious
// match, so the label set is exactly the route table plus "other".
func NormalizeRoute(path string) string {
	switch path {
	case "/healthz", "/statsz", "/metricsz", "/debug/tracez":
		return path
	}
	seg := strings.Split(strings.Trim(path, "/"), "/")
	if len(seg) < 2 || seg[0] != "v1" {
		return "other"
	}
	switch seg[1] {
	case "classify":
		if len(seg) == 2 {
			return "/v1/classify"
		}
		if len(seg) == 3 && seg[2] == "batch" {
			return "/v1/classify/batch"
		}
	case "census":
		if len(seg) == 3 {
			return "/v1/census/{k}"
		}
		if len(seg) == 4 && seg[2] == "paths" {
			return "/v1/census/paths/{k}"
		}
	case "jobs":
		switch {
		case len(seg) == 2:
			return "/v1/jobs"
		case len(seg) == 3:
			return "/v1/jobs/{id}"
		case len(seg) == 4 && seg[3] == "events":
			return "/v1/jobs/{id}/events"
		}
	case "proof":
		if len(seg) == 3 {
			return "/v1/proof/{fingerprint}"
		}
	case "admin":
		if len(seg) == 3 && seg[2] == "snapshot" {
			return "/v1/admin/snapshot"
		}
	}
	return "other"
}

// MetricsHandler serves the registry in Prometheus text exposition
// format (GET /metricsz).
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// tracezResponse is the /debug/tracez JSON shape.
type tracezResponse struct {
	Count  int         `json:"count"`
	Traces []TraceView `json:"traces"`
}

// TracezHandler serves the recent-trace ring as JSON (GET
// /debug/tracez), newest first. Query parameters:
//
//	decider=cycles   only traces served by this decider
//	min_ms=5         only traces at least this slow
//	limit=50         at most this many traces
func TracezHandler(ring *TraceRing) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		decider := q.Get("decider")
		minMS := 0.0
		if v := q.Get("min_ms"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				http.Error(w, "invalid min_ms: "+err.Error(), http.StatusBadRequest)
				return
			}
			minMS = f
		}
		limit := 0
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				http.Error(w, "invalid limit: "+err.Error(), http.StatusBadRequest)
				return
			}
			limit = n
		}
		views := ring.Snapshot()
		out := tracezResponse{Traces: []TraceView{}}
		for _, v := range views {
			if decider != "" && v.Decider != decider {
				continue
			}
			if v.DurationMS < minMS {
				continue
			}
			out.Traces = append(out.Traces, v)
			if limit > 0 && len(out.Traces) == limit {
				break
			}
		}
		out.Count = len(out.Traces)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
}
