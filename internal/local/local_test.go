package local

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/problems"
	"repro/internal/ramsey"
)

func nodeColors(g *graph.Graph, out []int) []int {
	colors := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		colors[v] = out[g.HalfEdge(v, 0)]
	}
	return colors
}

func checkProper(t *testing.T, g *graph.Graph, colors []int, k int) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		if colors[v] < 0 || colors[v] >= k {
			t.Fatalf("node %d color %d outside palette [%d]", v, colors[v], k)
		}
	}
	g.Edges(func(u, pu, v, pv int) {
		if colors[u] == colors[v] {
			t.Fatalf("edge {%d,%d} monochromatic (color %d)", u, v, colors[u])
		}
	})
}

func TestLinialParamsSane(t *testing.T) {
	for _, m := range []int{4, 10, 100, 1 << 20} {
		for _, delta := range []int{2, 3, 5} {
			q, d := linialParams(m, delta)
			if !isPrime(q) || q <= d*delta {
				t.Errorf("linialParams(%d,%d) = (%d,%d) invalid", m, delta, q, d)
			}
			pow := 1
			for i := 0; i <= d; i++ {
				pow *= q
			}
			if pow < m {
				t.Errorf("linialParams(%d,%d): q^(d+1)=%d < m", m, delta, pow)
			}
		}
	}
}

func TestColoringOnCycles(t *testing.T) {
	for _, n := range []int{3, 8, 33, 128, 500} {
		g := graph.Cycle(n)
		res, err := Run(g, NewColoring(2), RunOpts{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkProper(t, g, nodeColors(g, res.Output), 3)
		p := problems.Coloring(3, 2)
		if !p.Solves(g, nil, res.Output) {
			t.Errorf("n=%d: output rejected by LCL verifier", n)
		}
	}
}

func TestColoringOnTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{5, 40, 300} {
		for _, delta := range []int{3, 5} {
			g := graph.RandomTree(n, delta, rng)
			res, err := Run(g, NewColoring(delta), RunOpts{IDs: RandomIDs(n, rng)})
			if err != nil {
				t.Fatalf("n=%d Δ=%d: %v", n, delta, err)
			}
			checkProper(t, g, nodeColors(g, res.Output), delta+1)
		}
	}
}

func TestColoringRoundsScaleLikeLogStar(t *testing.T) {
	// Rounds must track log* n: a constant-size greedy sweep (~palette
	// rounds, palette = O(Δ² log² Δ)) dominates small n, so the bound is
	// c1·log* n + c2 with generous constants — and for large n the count
	// must be decisively sublinear.
	for _, n := range []int{16, 256, 4096} {
		g := graph.Cycle(n)
		res, err := Run(g, NewColoring(2), RunOpts{})
		if err != nil {
			t.Fatal(err)
		}
		bound := 8*(ramsey.LogStarInt(n)+1) + 64
		if res.Rounds > bound {
			t.Errorf("n=%d: %d rounds exceeds O(log* n) bound %d", n, res.Rounds, bound)
		}
		if n >= 256 && res.Rounds >= n/4 {
			t.Errorf("n=%d: %d rounds is not sublinear", n, res.Rounds)
		}
	}
}

func TestMISOnVariousGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := problems.MIS(4)
	graphs := []*graph.Graph{
		graph.Cycle(10), graph.Path(17), graph.Star(4),
		graph.RandomTree(60, 4, rng), graph.CompleteTree(3, 3),
	}
	for _, g := range graphs {
		res, err := Run(g, NewMIS(4), RunOpts{IDs: RandomIDs(g.N(), rng)})
		if err != nil {
			t.Fatal(err)
		}
		if vs := p.Verify(g, nil, res.Output); len(vs) != 0 {
			t.Errorf("MIS invalid on %d-node graph: %v", g.N(), vs[0])
		}
	}
}

func TestMatchingOnVariousGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := problems.MaximalMatching(4)
	graphs := []*graph.Graph{
		graph.Cycle(10), graph.Cycle(11), graph.Path(8), graph.Star(4),
		graph.RandomTree(50, 4, rng),
	}
	for _, g := range graphs {
		res, err := Run(g, NewMatching(4), RunOpts{IDs: RandomIDs(g.N(), rng)})
		if err != nil {
			t.Fatal(err)
		}
		if vs := p.Verify(g, nil, res.Output); len(vs) != 0 {
			t.Errorf("matching invalid on %d-node graph: %v", g.N(), vs[0])
		}
	}
}

func TestLeaderColoringOnEvenCyclesAndPaths(t *testing.T) {
	p := problems.Coloring(2, 2)
	for _, n := range []int{4, 10, 64} {
		g := graph.Cycle(n)
		res, err := Run(g, LeaderColoringMachine{}, RunOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Solves(g, nil, res.Output) {
			t.Errorf("leader 2-coloring failed on C%d", n)
		}
		if res.Rounds != n {
			t.Errorf("leader coloring used %d rounds on C%d, want %d", res.Rounds, n, n)
		}
	}
	g := graph.Path(9)
	res, err := Run(g, LeaderColoringMachine{}, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Solves(g, nil, res.Output) {
		t.Error("leader 2-coloring failed on P9")
	}
}

func TestConstantMachine(t *testing.T) {
	g := graph.Star(3)
	res, err := Run(g, ConstantMachine{Label: 0}, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 1 {
		t.Errorf("constant machine used %d rounds", res.Rounds)
	}
	if !problems.Trivial(3).Solves(g, nil, res.Output) {
		t.Error("constant output rejected")
	}
}

func TestCopyInputMachine(t *testing.T) {
	g := graph.Path(4)
	fin := make([]int, g.NumHalfEdges())
	for h := range fin {
		fin[h] = h % 2
	}
	res, err := Run(g, CopyInputMachine{}, RunOpts{In: fin})
	if err != nil {
		t.Fatal(err)
	}
	if !problems.EdgeGrouping().Solves(g, fin, res.Output) {
		t.Error("copy-input output rejected")
	}
}

func TestSinklessOrientOnTree(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := graph.CompleteTree(3, 3)
	// Put the max ID on a leaf so the root of the orientation has degree 1.
	ids := SequentialIDs(g.N())
	leaf := -1
	for v := 0; v < g.N(); v++ {
		if g.Deg(v) == 1 {
			leaf = v
			break
		}
	}
	ids[leaf] = g.N() * 10
	res, err := Run(g, SinklessOrientMachine{}, RunOpts{IDs: ids})
	if err != nil {
		t.Fatal(err)
	}
	p := problems.SinklessOrientation(3)
	if vs := p.Verify(g, nil, res.Output); len(vs) != 0 {
		t.Errorf("sinkless orientation invalid: %v", vs[0])
	}
	_ = rng
}

func TestRunBallConstantRadius(t *testing.T) {
	// A radius-1 ball algorithm: output the max degree seen (clamped to the
	// trivial problem's single label 0) — exercises RunBall plumbing.
	g := graph.Star(3)
	alg := &funcBallAlg{
		name: "deg-probe", radius: func(int) int { return 1 },
		output: func(b *graph.Ball, n int) []int {
			out := make([]int, b.Deg[0])
			return out
		},
	}
	res, err := RunBall(g, alg, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.Rounds)
	}
	if !problems.Trivial(3).Solves(g, nil, res.Output) {
		t.Error("ball algorithm output rejected")
	}
}

type funcBallAlg struct {
	name   string
	radius func(n int) int
	output func(b *graph.Ball, n int) []int
}

func (f *funcBallAlg) Name() string                      { return f.name }
func (f *funcBallAlg) Radius(n int) int                  { return f.radius(n) }
func (f *funcBallAlg) Output(b *graph.Ball, n int) []int { return f.output(b, n) }

func TestRandomIDsDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ids := RandomIDs(500, rng)
	seen := map[int]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatal("duplicate identifier")
		}
		if id < 1 || id > 500*500*500+1 {
			t.Fatalf("identifier %d outside polynomial range", id)
		}
		seen[id] = true
	}
}

func TestColoringUnderAdversarialIDs(t *testing.T) {
	// Sorted, reverse-sorted, and random ID orders must all produce proper
	// colorings (order-sensitivity check for the Linial machine).
	g := graph.Cycle(32)
	perms := [][]int{make([]int, 32), make([]int, 32)}
	for i := 0; i < 32; i++ {
		perms[0][i] = i
		perms[1][i] = 31 - i
	}
	for _, perm := range perms {
		res, err := Run(g, NewColoring(2), RunOpts{IDs: PermutedIDs(perm)})
		if err != nil {
			t.Fatal(err)
		}
		checkProper(t, g, nodeColors(g, res.Output), 3)
	}
}

func TestMachineTermination(t *testing.T) {
	// A machine that never finishes must be caught by MaxRounds.
	g := graph.Path(3)
	_, err := Run(g, infiniteMachine{}, RunOpts{MaxRounds: 10})
	if err == nil {
		t.Error("non-terminating machine not detected")
	}
}

type infiniteMachine struct{}

func (infiniteMachine) Name() string                           { return "inf" }
func (infiniteMachine) Init(*NodeInfo) any                     { return nil }
func (infiniteMachine) Step(*NodeInfo, any, []any) (any, bool) { return nil, false }
func (infiniteMachine) Output(info *NodeInfo, _ any) []int     { return make([]int, info.Deg) }
