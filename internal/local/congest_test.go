package local

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/problems"
)

func TestCongestColoringMatchesLocal(t *testing.T) {
	// The [10] transfer, witnessed: the CONGEST coloring produces the same
	// coloring in the same number of rounds as the LOCAL machine, with
	// messages within the O(log n) budget.
	rng := rand.New(rand.NewSource(151))
	for _, n := range []int{16, 128, 1024} {
		g := graph.Cycle(n)
		ids := RandomIDs(n, rng)
		localRes, err := Run(g, NewColoring(2), RunOpts{IDs: ids})
		if err != nil {
			t.Fatal(err)
		}
		congestRes, err := RunCongest(g, NewCongestColoring(2), RunOpts{IDs: ids}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if congestRes.Rounds != localRes.Rounds {
			t.Errorf("n=%d: CONGEST %d rounds vs LOCAL %d", n, congestRes.Rounds, localRes.Rounds)
		}
		for h := range localRes.Output {
			if congestRes.Output[h] != localRes.Output[h] {
				t.Fatalf("n=%d: outputs differ at half-edge %d", n, h)
			}
		}
		if !problems.Coloring(3, 2).Solves(g, nil, congestRes.Output) {
			t.Errorf("n=%d: CONGEST coloring invalid", n)
		}
		if congestRes.MaxMessageBits == 0 {
			t.Error("no message sizes recorded")
		}
	}
}

func TestCongestBudgetEnforced(t *testing.T) {
	// A machine that ships a huge message must be rejected.
	g := graph.Path(4)
	_, err := RunCongest(g, bigTalker{}, RunOpts{}, 16)
	if err == nil {
		t.Error("oversized message accepted")
	}
}

type bigTalker struct{}

func (bigTalker) Name() string       { return "big-talker" }
func (bigTalker) Init(*NodeInfo) any { return nil }
func (bigTalker) Send(info *NodeInfo, _ any) [][]int {
	msgs := make([][]int, info.Deg)
	for p := range msgs {
		msgs[p] = []int{1 << 40} // 41 bits > 16-bit budget
	}
	return msgs
}
func (bigTalker) Receive(info *NodeInfo, st any, _ [][]int) (any, bool) { return st, true }
func (bigTalker) Output(info *NodeInfo, _ any) []int                    { return make([]int, info.Deg) }

func TestCongestOnTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(157))
	g := graph.RandomTree(300, 3, rng)
	res, err := RunCongest(g, NewCongestColoring(3), RunOpts{IDs: RandomIDs(300, rng)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !problems.Coloring(4, 3).Solves(g, nil, res.Output) {
		t.Error("CONGEST tree coloring invalid")
	}
	// Message budget: colors start at n³+2 < 2^25; budget 8·log2(n) ≈ 72.
	if res.MaxMessageBits > 8*9 {
		t.Errorf("max message %d bits exceeds expectation", res.MaxMessageBits)
	}
}

func TestMessageBits(t *testing.T) {
	if messageBits([]int{0}) != 1 {
		t.Error("zero should cost 1 bit")
	}
	if messageBits([]int{7}) != 3 {
		t.Errorf("7 costs %d bits, want 3", messageBits([]int{7}))
	}
	if messageBits([]int{1, 1, 1}) != 3 {
		t.Error("three unit entries should cost 3 bits")
	}
	if messageBits([]int{-8}) != 4 {
		t.Error("negatives charged by magnitude")
	}
}
