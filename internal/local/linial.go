package local

import (
	"fmt"

	"repro/internal/reduction"
)

// Linial's color reduction (Linial 1987/1992, [36, 37] in the paper): one
// round reduces a proper m-coloring to a proper q²-coloring where q is the
// smallest prime with q > d·Δ and q^(d+1) >= m for some degree bound d.
// Iterating from the identifier space reaches a palette of size O(Δ² log²Δ)
// in O(log* n) rounds; a final greedy phase (one round per surplus color)
// reduces to Δ+1. The total is Θ(log* n) rounds for constant Δ — the
// witness for class B (Θ(log log* n)–Θ(log* n)) of Figure 1, which on
// trees collapses to exactly Θ(log* n) by Theorem 1.1.

// linialParams, isPrime, and linialStep delegate to the shared
// color-reduction arithmetic in internal/reduction.
func linialParams(m, delta int) (q, d int) { return reduction.LinialParams(m, delta) }

func isPrime(x int) bool { return reduction.IsPrime(x) }

func linialStep(c int, neighbors []int, m, delta int) (int, int) {
	return reduction.LinialStep(c, neighbors, m, delta)
}

// linialState is the state of the coloring machine.
type linialState struct {
	color   int
	palette int
	phase   int // 0 = reduction, 1 = greedy sweep
	sweep   int // current color class being recolored in greedy phase
}

// ColoringMachine computes a proper (target+1)-coloring with target >= Δ
// via Linial reduction + greedy sweep. Nodes output their color on every
// half-edge, matching problems.Coloring's encoding.
type ColoringMachine struct {
	Delta  int
	Target int // palette size to reach (>= Delta+1)
}

// NewColoring returns a machine computing a proper (Δ+1)-coloring.
func NewColoring(delta int) *ColoringMachine {
	return &ColoringMachine{Delta: delta, Target: delta + 1}
}

// Name implements Machine.
func (cm *ColoringMachine) Name() string {
	return fmt.Sprintf("linial-%d-coloring", cm.Target)
}

// Init starts from the identifier coloring over the poly-range palette.
func (cm *ColoringMachine) Init(info *NodeInfo) any {
	pal := info.N*info.N*info.N + 2
	return linialState{color: info.ID, palette: pal}
}

// Step implements Machine.
func (cm *ColoringMachine) Step(info *NodeInfo, state any, inbox []any) (any, bool) {
	st := state.(linialState)
	neigh := make([]int, len(inbox))
	for i, s := range inbox {
		neigh[i] = s.(linialState).color
	}
	if st.phase == 0 {
		q, _ := linialParams(st.palette, cm.Delta)
		if q*q < st.palette {
			// Reduction still shrinks the palette: apply one Linial round.
			nc, np := linialStep(st.color, neigh, st.palette, cm.Delta)
			st.color, st.palette = nc, np
			return st, false
		}
		// Palette is O(Δ²)-ish and stable: switch to the greedy sweep.
		st.phase = 1
		st.sweep = st.palette - 1
		return st, st.palette <= cm.Target
	}
	// Greedy phase: one color class per round, from the top. A node whose
	// color equals the sweep value recolors to the smallest color in
	// [0, Target) unused by its neighbors (exists since Target > Δ).
	if st.color == st.sweep && st.color >= cm.Target {
		used := map[int]bool{}
		for _, nc := range neigh {
			used[nc] = true
		}
		for c := 0; c < cm.Target; c++ {
			if !used[c] {
				st.color = c
				break
			}
		}
	}
	st.sweep--
	return st, st.sweep < cm.Target
}

// Output implements Machine: the node's color on every half-edge.
func (cm *ColoringMachine) Output(info *NodeInfo, state any) []int {
	st := state.(linialState)
	out := make([]int, info.Deg)
	for i := range out {
		out[i] = st.color
	}
	return out
}

// Colors extracts per-node colors from a coloring run's output labeling.
func Colors(numNodes int, deg func(int) int, halfEdge func(v, p int) int, out []int) []int {
	colors := make([]int, numNodes)
	for v := 0; v < numNodes; v++ {
		if deg(v) == 0 {
			colors[v] = 0
			continue
		}
		colors[v] = out[halfEdge(v, 0)]
	}
	return colors
}
