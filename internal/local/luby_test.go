package local

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// decodeMIS reads membership from the problems.MIS half-edge encoding.
func decodeMIS(g *graph.Graph, out []int) []bool {
	in := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		in[v] = out[g.HalfEdge(v, 0)] == 0
	}
	return in
}

func assertMIS(t *testing.T, g *graph.Graph, in []bool) {
	t.Helper()
	g.Edges(func(u, _, v, _ int) {
		if in[u] && in[v] {
			t.Fatalf("edge {%d,%d}: both in set", u, v)
		}
	})
	for v := 0; v < g.N(); v++ {
		if in[v] {
			continue
		}
		dominated := false
		for p := 0; p < g.Deg(v); p++ {
			if in[g.Neighbor(v, p).To] {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("node %d neither in set nor dominated", v)
		}
	}
}

func TestLubyMISOnVariousGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []*graph.Graph{
		graph.Cycle(50),
		graph.Path(33),
		graph.RandomTree(200, 4, rng),
		graph.RandomRegular(120, 5, rng),
		graph.Star(7),
	}
	for i, g := range cases {
		res, err := Run(g, LubyMIS{}, RunOpts{Random: true, Seed: int64(i + 1)})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		assertMIS(t, g, decodeMIS(g, res.Output))
	}
}

func TestLubyMISAcrossSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomTree(100, 3, rng)
	for seed := int64(0); seed < 20; seed++ {
		res, err := Run(g, LubyMIS{}, RunOpts{Random: true, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		assertMIS(t, g, decodeMIS(g, res.Output))
	}
}

func TestLubyMISRoundsLogarithmic(t *testing.T) {
	// Luby terminates in O(log n) rounds w.h.p.; check a generous
	// logarithmic envelope across a 64x range (3 seeds each).
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{64, 512, 4096} {
		g := graph.RandomTree(n, 4, rng)
		worst := 0
		for seed := int64(0); seed < 3; seed++ {
			res, err := Run(g, LubyMIS{}, RunOpts{Random: true, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.Rounds > worst {
				worst = res.Rounds
			}
		}
		// Two rounds per phase; intLog2-style envelope.
		limit := 10 * (2 + intLog2(n))
		if worst > limit {
			t.Errorf("n=%d: %d rounds exceeds envelope %d", n, worst, limit)
		}
	}
}

func intLog2(n int) int {
	l := 0
	for ; n > 1; n >>= 1 {
		l++
	}
	return l
}

func TestLubyVersusDeterministicMIS(t *testing.T) {
	// Same graph, both engines: the deterministic Linial-based machine
	// and Luby must both produce valid MIS (their round profiles differ —
	// Θ(log* n) + palette sweep vs O(log n) phases — which is exactly the
	// deterministic/randomized contrast of the landscape's class rows).
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomTree(300, 4, rng)
	det, err := Run(g, NewMIS(4), RunOpts{IDs: RandomIDs(300, rng)})
	if err != nil {
		t.Fatal(err)
	}
	assertMIS(t, g, decodeMIS(g, det.Output))
	luby, err := Run(g, LubyMIS{}, RunOpts{Random: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	assertMIS(t, g, decodeMIS(g, luby.Output))
}

func TestLubyRequiresRandomness(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LubyMIS without RunOpts.Random should panic")
		}
	}()
	g := graph.Cycle(5)
	_, _ = Run(g, LubyMIS{}, RunOpts{})
}
