package local

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// Failure-injection tests: the LOCAL machines must stay correct under
// adversarial identifier assignments and adversarial port numberings —
// the two degrees of freedom Definition 2.1 grants the adversary.

// sawtoothIDs produces the ID pattern that forces the worst case for
// order-invariant arguments: alternating local maxima and minima.
func sawtoothIDs(n int) []int {
	ids := make([]int, n)
	lo, hi := 1, n*7+1
	for i := range ids {
		if i%2 == 0 {
			ids[i] = lo
			lo += 7
		} else {
			ids[i] = hi
			hi += 7
		}
	}
	return ids
}

func TestColoringUnderSawtoothIDs(t *testing.T) {
	for _, n := range []int{8, 64, 257} {
		g := graph.Cycle(n)
		m := NewColoring(2)
		res, err := Run(g, m, RunOpts{IDs: sawtoothIDs(n)})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		assertProperVertexColoring(t, g, res)
	}
}

// assertProperVertexColoring checks the machine's per-node color output
// (identical labels on all of a node's half-edges, differing across
// edges).
func assertProperVertexColoring(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	color := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		c := res.Output[g.HalfEdge(v, 0)]
		for p := 1; p < g.Deg(v); p++ {
			if res.Output[g.HalfEdge(v, p)] != c {
				t.Fatalf("node %d has mixed half-edge colors", v)
			}
		}
		color[v] = c
	}
	g.Edges(func(u, _, v, _ int) {
		if color[u] == color[v] {
			t.Fatalf("edge {%d,%d} monochromatic (color %d)", u, v, color[u])
		}
	})
}

func TestColoringUnderShuffledPorts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		g := graph.ShufflePorts(graph.RandomTree(n, 3, rng), rng)
		m := NewColoring(3)
		res, err := Run(g, m, RunOpts{IDs: RandomIDs(n, rng)})
		if err != nil {
			return false
		}
		color := make([]int, g.N())
		for v := 0; v < g.N(); v++ {
			color[v] = res.Output[g.HalfEdge(v, 0)]
		}
		proper := true
		g.Edges(func(u, _, v, _ int) {
			if color[u] == color[v] {
				proper = false
			}
		})
		return proper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMISUnderAdversarialInputsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(40)
		var g *graph.Graph
		if seed%2 == 0 {
			g = graph.Cycle(n)
		} else {
			g = graph.ShufflePorts(graph.RandomTree(n, 4, rng), rng)
		}
		m := NewMIS(4)
		ids := RandomIDs(n, rng)
		if seed%3 == 0 {
			ids = sawtoothIDs(n)
		}
		res, err := Run(g, m, RunOpts{IDs: ids})
		if err != nil {
			return false
		}
		// Decode membership: set members output I (= 0) on every
		// half-edge; non-members output O/P (1/2).
		in := make([]bool, g.N())
		for v := 0; v < g.N(); v++ {
			in[v] = res.Output[g.HalfEdge(v, 0)] == 0
		}
		ok := true
		g.Edges(func(u, _, v, _ int) {
			if in[u] && in[v] {
				ok = false // not independent
			}
		})
		for v := 0; v < g.N() && ok; v++ {
			if in[v] {
				continue
			}
			dominated := false
			for p := 0; p < g.Deg(v); p++ {
				if in[g.Neighbor(v, p).To] {
					dominated = true
					break
				}
			}
			if !dominated {
				ok = false // not maximal
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundsUnaffectedByIDScale(t *testing.T) {
	// Multiplying all IDs by a constant (preserving order) must not
	// change the coloring machine's round count on the same graph — the
	// executable shadow of order-invariance for Linial-style reduction.
	g := graph.Cycle(128)
	ids := SequentialIDs(128)
	big := make([]int, len(ids))
	for i, id := range ids {
		big[i] = id*1000 + 3
	}
	m1, m2 := NewColoring(2), NewColoring(2)
	r1, err := Run(g, m1, RunOpts{IDs: ids})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(g, m2, RunOpts{IDs: big})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rounds != r2.Rounds {
		t.Fatalf("rounds changed under monotone ID rescaling: %d vs %d", r1.Rounds, r2.Rounds)
	}
}
