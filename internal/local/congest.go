package local

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// The CONGEST model (footnote 3 of the paper): LOCAL with messages capped
// at O(log n) bits per edge per round. Balliu, Censor-Hillel, Maus,
// Olivetti, Suomela [10] proved that every LCL on trees has the same
// asymptotic complexity in LOCAL and CONGEST — so the paper's tree gap
// (Theorem 1.1) extends to CONGEST. We provide the model so witnesses can
// be *checked* to be CONGEST-compatible: a CongestMachine exchanges
// explicit bounded-size messages instead of whole states, and the runner
// enforces the bit budget every round.

// CongestMachine is a message-passing algorithm with explicit messages:
// each round a node emits one message (a small int slice) per port, and
// consumes one per port.
type CongestMachine interface {
	Name() string
	Init(info *NodeInfo) any
	// Send produces this round's per-port messages.
	Send(info *NodeInfo, state any) [][]int
	// Receive consumes per-port messages and advances the state.
	Receive(info *NodeInfo, state any, inbox [][]int) (any, bool)
	Output(info *NodeInfo, state any) []int
}

// CongestResult extends Result with the maximum message size observed.
type CongestResult struct {
	Result
	MaxMessageBits int
}

// RunCongest executes a CONGEST machine, enforcing the per-message bit
// budget budgetBits (0 means the standard c·log₂(n) with c = 8).
func RunCongest(g *graph.Graph, m CongestMachine, opts RunOpts, budgetBits int) (*CongestResult, error) {
	n := g.N()
	if budgetBits == 0 {
		logn := bits.Len(uint(n)) // ceil(log2(n+1))
		budgetBits = 8 * logn
	}
	ids := opts.IDs
	if ids == nil {
		ids = SequentialIDs(n)
	}
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = 8*n + 1024
	}
	infos := make([]*NodeInfo, n)
	states := make([]any, n)
	done := make([]bool, n)
	for v := 0; v < n; v++ {
		info := &NodeInfo{N: n, ID: ids[v], Deg: g.Deg(v)}
		info.In = make([]int, g.Deg(v))
		info.Dim = make([]int, g.Deg(v))
		for p := 0; p < g.Deg(v); p++ {
			if opts.In != nil {
				info.In[p] = opts.In[g.HalfEdge(v, p)]
			}
			info.Dim[p] = g.DimLabel(v, p)
		}
		infos[v] = info
		states[v] = m.Init(info)
	}
	res := &CongestResult{}
	for r := 0; r < maxRounds; r++ {
		allDone := true
		for v := 0; v < n && allDone; v++ {
			allDone = done[v]
		}
		if allDone {
			break
		}
		res.Rounds++
		// Collect outgoing messages, enforcing the budget.
		outMsgs := make([][][]int, n)
		for v := 0; v < n; v++ {
			if done[v] {
				continue
			}
			msgs := m.Send(infos[v], states[v])
			if len(msgs) != g.Deg(v) {
				return nil, fmt.Errorf("local: %s sent %d messages at degree-%d node", m.Name(), len(msgs), g.Deg(v))
			}
			for p, msg := range msgs {
				sz := messageBits(msg)
				if sz > budgetBits {
					return nil, fmt.Errorf("local: %s message of %d bits exceeds CONGEST budget %d (round %d, node %d, port %d)",
						m.Name(), sz, budgetBits, r, v, p)
				}
				if sz > res.MaxMessageBits {
					res.MaxMessageBits = sz
				}
			}
			outMsgs[v] = msgs
		}
		// Deliver and advance.
		next := make([]any, n)
		for v := 0; v < n; v++ {
			if done[v] {
				next[v] = states[v]
				continue
			}
			inbox := make([][]int, g.Deg(v))
			for p, ep := range g.Ports(v) {
				if outMsgs[ep.To] != nil {
					inbox[p] = outMsgs[ep.To][ep.ToPort]
				}
			}
			st, fin := m.Receive(infos[v], states[v], inbox)
			next[v] = st
			done[v] = fin
		}
		states = next
	}
	for v := 0; v < n; v++ {
		if !done[v] {
			return nil, fmt.Errorf("local: %s did not terminate within %d rounds", m.Name(), maxRounds)
		}
	}
	out := make([]int, g.NumHalfEdges())
	for v := 0; v < n; v++ {
		lab := m.Output(infos[v], states[v])
		if len(lab) != g.Deg(v) {
			return nil, fmt.Errorf("local: %s output arity mismatch", m.Name())
		}
		for p, o := range lab {
			out[g.HalfEdge(v, p)] = o
		}
	}
	res.Output = out
	return res, nil
}

// messageBits charges each int its bit length (minimum 1 per entry).
func messageBits(msg []int) int {
	total := 0
	for _, x := range msg {
		if x < 0 {
			x = -x
		}
		b := bits.Len(uint(x))
		if b == 0 {
			b = 1
		}
		total += b
	}
	return total
}

// CongestColoring adapts the Linial coloring machine to CONGEST: the only
// information exchanged each round is the current color — an O(log n)-bit
// message, since palettes start at n³+2 and only shrink. This witnesses
// the [10] transfer for the Θ(log* n) class: same rounds, bounded
// messages.
type CongestColoring struct{ Inner *ColoringMachine }

// NewCongestColoring returns a CONGEST (Δ+1)-coloring machine.
func NewCongestColoring(delta int) CongestColoring {
	return CongestColoring{Inner: NewColoring(delta)}
}

// Name implements CongestMachine.
func (c CongestColoring) Name() string { return c.Inner.Name() + "-congest" }

// Init implements CongestMachine.
func (c CongestColoring) Init(info *NodeInfo) any { return c.Inner.Init(info) }

// Send implements CongestMachine: broadcast the current color.
func (c CongestColoring) Send(info *NodeInfo, state any) [][]int {
	st := state.(linialState)
	msgs := make([][]int, info.Deg)
	for p := range msgs {
		msgs[p] = []int{st.color}
	}
	return msgs
}

// Receive implements CongestMachine: feed neighbor colors to the inner
// LOCAL machine (whose Step only ever reads neighbors' colors — the
// property that makes it CONGEST-compatible).
func (c CongestColoring) Receive(info *NodeInfo, state any, inbox [][]int) (any, bool) {
	innerInbox := make([]any, len(inbox))
	for p, msg := range inbox {
		color := 0
		if len(msg) > 0 {
			color = msg[0]
		}
		innerInbox[p] = linialState{color: color}
	}
	return c.Inner.Step(info, state, innerInbox)
}

// Output implements CongestMachine.
func (c CongestColoring) Output(info *NodeInfo, state any) []int {
	return c.Inner.Output(info, state)
}
