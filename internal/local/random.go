package local

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/lcl"
)

// Randomized LOCAL algorithms and the local failure probability of
// Definition 2.4, operationalized: an algorithm's local failure
// probability on a graph is the maximum over edges and nodes of the
// probability that the output is incorrect there; we estimate it by
// repeated simulation. This is the quantity Theorem 3.4 tracks across the
// round elimination sequence.

// RandomColoringMachine outputs a uniformly random color from a k-palette
// in zero rounds. Its local failure probability on any graph is exactly
// 1/k per edge (the probability both endpoints draw the same color) —
// a convenient calibration point for the estimator.
type RandomColoringMachine struct{ K int }

// Name implements Machine.
func (r RandomColoringMachine) Name() string { return fmt.Sprintf("random-%d-coloring", r.K) }

// Init implements Machine.
func (r RandomColoringMachine) Init(info *NodeInfo) any {
	if info.Rand == nil {
		panic("local: RandomColoringMachine needs RunOpts.Random")
	}
	return info.Rand.Intn(r.K)
}

// Step implements Machine.
func (r RandomColoringMachine) Step(info *NodeInfo, state any, inbox []any) (any, bool) {
	return state, true
}

// Output implements Machine.
func (r RandomColoringMachine) Output(info *NodeInfo, state any) []int {
	out := make([]int, info.Deg)
	for i := range out {
		out[i] = state.(int)
	}
	return out
}

// RandomizedFixMachine draws a random color and then runs `fixRounds`
// correction rounds: a node in conflict with a neighbor (same color, lower
// ID) redraws. Local failure probability decays with fixRounds — the
// knob used to generate algorithms of varying quality for the Theorem 3.4
// experiments.
type RandomizedFixMachine struct {
	K         int
	FixRounds int
}

// Name implements Machine.
func (r RandomizedFixMachine) Name() string {
	return fmt.Sprintf("random-%d-coloring-fix%d", r.K, r.FixRounds)
}

type fixState struct {
	color int
	round int
}

// Init implements Machine.
func (r RandomizedFixMachine) Init(info *NodeInfo) any {
	return fixState{color: info.Rand.Intn(r.K)}
}

// Step implements Machine.
func (r RandomizedFixMachine) Step(info *NodeInfo, state any, inbox []any) (any, bool) {
	st := state.(fixState)
	if st.round >= r.FixRounds {
		return st, true
	}
	conflict := false
	for _, s := range inbox {
		if s.(fixState).color == st.color {
			conflict = true
			break
		}
	}
	if conflict {
		st.color = info.Rand.Intn(r.K)
	}
	st.round++
	return st, st.round >= r.FixRounds
}

// Output implements Machine.
func (r RandomizedFixMachine) Output(info *NodeInfo, state any) []int {
	out := make([]int, info.Deg)
	for i := range out {
		out[i] = state.(fixState).color
	}
	return out
}

// FailureEstimate reports empirical per-site failure frequencies.
type FailureEstimate struct {
	Local  float64 // max over edges/nodes of empirical failure frequency
	Global float64 // frequency of at least one violation anywhere
	Trials int
}

// EstimateLocalFailure runs the randomized machine `trials` times and
// measures, per edge and per node, how often the output is incorrect
// there (Definition 2.4), returning the maximum — the empirical local
// failure probability — together with the global failure frequency.
func EstimateLocalFailure(g *graph.Graph, m Machine, p *lcl.Problem, fin []int, trials int, seed int64) (*FailureEstimate, error) {
	siteFail := map[string]int{}
	globalFail := 0
	for t := 0; t < trials; t++ {
		res, err := Run(g, m, RunOpts{In: fin, Random: true, Seed: seed + int64(t)*7919})
		if err != nil {
			return nil, err
		}
		vs := p.Verify(g, fin, res.Output)
		if len(vs) > 0 {
			globalFail++
		}
		seen := map[string]bool{}
		for _, v := range vs {
			key := fmt.Sprintf("%s/%d/%d", v.Kind, v.V, v.U)
			if !seen[key] {
				seen[key] = true
				siteFail[key]++
			}
		}
	}
	est := &FailureEstimate{Trials: trials, Global: float64(globalFail) / float64(trials)}
	for _, c := range siteFail {
		if f := float64(c) / float64(trials); f > est.Local {
			est.Local = f
		}
	}
	return est, nil
}
