// Package local implements the LOCAL model of Definition 2.1 and the
// classic algorithms used as complexity-class witnesses: Linial's
// iterated color reduction (Θ(log* n)), MIS and maximal matching via color
// classes, leader-based global algorithms (Θ(n)), and O(1) algorithms.
//
// Two algorithm representations are provided:
//
//   - Machine: a synchronous message-passing state machine (round-based,
//     unbounded messages — the textbook LOCAL view). Round complexity is
//     measured as the number of communication rounds actually executed.
//   - BallAlgorithm: a pure function from the radius-T view B_G(u, T) to
//     the output on u's half-edges — the formulation of Definition 2.1
//     ("a T-round algorithm is simply a function from the space of all
//     possible labeled T-hop neighborhoods to the space of outputs"),
//     used by the order-invariance and speed-up machinery.
package local

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// NodeInfo carries what a node knows at round 0 (Definition 2.1): the
// number of nodes n, its identifier, degree, per-port input labels, and —
// for oriented grids — per-port dimension labels. Rand is the node's
// private random bit source (nil for deterministic runs).
type NodeInfo struct {
	N    int
	ID   int
	Deg  int
	In   []int
	Dim  []int
	Rand *rand.Rand
}

// Machine is a synchronous LOCAL algorithm. Each round, every node's state
// is delivered to all neighbors (LOCAL allows unbounded messages, so
// exchanging full states is WLOG). Done nodes stop participating in the
// round count but their state remains visible.
type Machine interface {
	Name() string
	// Init returns the initial state of a node.
	Init(info *NodeInfo) any
	// Step consumes the neighbors' previous-round states (indexed by port)
	// and returns the new state, plus whether this node has decided.
	Step(info *NodeInfo, state any, inbox []any) (any, bool)
	// Output extracts the final per-port output labels.
	Output(info *NodeInfo, state any) []int
}

// Result reports a run: the produced half-edge labeling and the number of
// rounds executed (max over nodes of rounds until decided).
type Result struct {
	Output []int
	Rounds int
}

// RunOpts configures a simulation run.
type RunOpts struct {
	In        []int // input labeling (dense half-edge index); nil = no inputs
	IDs       []int // identifiers; nil = sequential 1..n
	Seed      int64 // base seed for randomized algorithms
	Random    bool  // give each node a private rand source
	MaxRounds int   // safety bound; 0 = 8n + 1024
}

// Run executes the machine on g and returns the labeling and round count.
func Run(g *graph.Graph, m Machine, opts RunOpts) (*Result, error) {
	n := g.N()
	ids := opts.IDs
	if ids == nil {
		ids = SequentialIDs(n)
	}
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = 8*n + 1024
	}
	infos := make([]*NodeInfo, n)
	states := make([]any, n)
	done := make([]bool, n)
	for v := 0; v < n; v++ {
		info := &NodeInfo{N: n, ID: ids[v], Deg: g.Deg(v)}
		info.In = make([]int, g.Deg(v))
		info.Dim = make([]int, g.Deg(v))
		for p := 0; p < g.Deg(v); p++ {
			if opts.In != nil {
				info.In[p] = opts.In[g.HalfEdge(v, p)]
			}
			info.Dim[p] = g.DimLabel(v, p)
		}
		if opts.Random {
			info.Rand = rand.New(rand.NewSource(opts.Seed ^ (int64(ids[v]) * 0x5851f42d4c957f2d)))
		}
		infos[v] = info
		states[v] = m.Init(info)
	}
	rounds := 0
	for r := 0; r < maxRounds; r++ {
		allDone := true
		for v := 0; v < n; v++ {
			if !done[v] {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		next := make([]any, n)
		rounds++
		for v := 0; v < n; v++ {
			if done[v] {
				next[v] = states[v]
				continue
			}
			inbox := make([]any, g.Deg(v))
			for p, ep := range g.Ports(v) {
				inbox[p] = states[ep.To]
			}
			st, fin := m.Step(infos[v], states[v], inbox)
			next[v] = st
			done[v] = fin
		}
		states = next
	}
	for v := 0; v < n; v++ {
		if !done[v] {
			return nil, fmt.Errorf("local: %s did not terminate within %d rounds", m.Name(), maxRounds)
		}
	}
	out := make([]int, g.NumHalfEdges())
	for v := 0; v < n; v++ {
		lab := m.Output(infos[v], states[v])
		if len(lab) != g.Deg(v) {
			return nil, fmt.Errorf("local: %s output %d labels at degree-%d node", m.Name(), len(lab), g.Deg(v))
		}
		for p, o := range lab {
			out[g.HalfEdge(v, p)] = o
		}
	}
	return &Result{Output: out, Rounds: rounds}, nil
}

// BallAlgorithm is the Definition 2.1 formulation: a function
// (parameterized by n) from labeled T(n)-hop views to outputs.
type BallAlgorithm interface {
	Name() string
	Radius(n int) int
	// Output returns the labels of the root's half-edges (indexed by port).
	Output(b *graph.Ball, n int) []int
}

// RunBall executes a ball algorithm: each node independently evaluates the
// function on its extracted view.
func RunBall(g *graph.Graph, a BallAlgorithm, opts RunOpts) (*Result, error) {
	n := g.N()
	ids := opts.IDs
	if ids == nil {
		ids = SequentialIDs(n)
	}
	var rnd [][]byte
	if opts.Random {
		rnd = RandomBits(n, 16, opts.Seed)
	}
	r := a.Radius(n)
	out := make([]int, g.NumHalfEdges())
	for v := 0; v < n; v++ {
		b := graph.ExtractBall(g, v, r, graph.BallOpts{In: opts.In, IDs: ids, Rand: rnd})
		lab := a.Output(b, n)
		if len(lab) != g.Deg(v) {
			return nil, fmt.Errorf("local: %s output %d labels at degree-%d node", a.Name(), len(lab), g.Deg(v))
		}
		for p, o := range lab {
			out[g.HalfEdge(v, p)] = o
		}
	}
	return &Result{Output: out, Rounds: r}, nil
}

// SequentialIDs returns IDs 1..n.
func SequentialIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i + 1
	}
	return ids
}

// RandomIDs returns n distinct identifiers drawn from [1, n^3] — the
// polynomial range of Definition 2.1.
func RandomIDs(n int, rng *rand.Rand) []int {
	seen := map[int]bool{}
	ids := make([]int, n)
	bound := n*n*n + 1
	for i := range ids {
		for {
			x := 1 + rng.Intn(bound)
			if !seen[x] {
				seen[x] = true
				ids[i] = x
				break
			}
		}
	}
	return ids
}

// PermutedIDs applies a permutation to sequential IDs: ids[v] = perm[v]+1.
func PermutedIDs(perm []int) []int {
	ids := make([]int, len(perm))
	for v, p := range perm {
		ids[v] = p + 1
	}
	return ids
}

// RandomBits gives each node `bytes` random bytes derived from seed.
func RandomBits(n, bytes int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, bytes)
		rng.Read(out[i])
	}
	return out
}
