package local

// This file provides the remaining class witnesses: MIS and maximal
// matching built on top of the Θ(log* n) coloring (still Θ(log* n) in
// total — class B/2 of the landscape), a leader-based global 2-coloring
// (Θ(n) — class 5 with k=1), and constant-round algorithms (class A).

// misState drives MIS-from-coloring: after the coloring stabilizes, color
// classes are swept; a node joins the set if no neighbor joined before it.
type misState struct {
	coloring  linialState
	colorDone bool
	sweep     int
	decided   int8 // 0 undecided, 1 in set, 2 out of set
	witness   int  // port of an in-set neighbor (for the P pointer)
}

// MISMachine computes a maximal independent set, outputting the
// problems.MIS encoding: label 0 = I on all half-edges of set members;
// label 2 = P on the witness port and 1 = O elsewhere for non-members.
type MISMachine struct {
	Delta int
	inner *ColoringMachine
}

// NewMIS returns an MIS machine for maximum degree delta.
func NewMIS(delta int) *MISMachine {
	return &MISMachine{Delta: delta, inner: NewColoring(delta)}
}

// Name implements Machine.
func (m *MISMachine) Name() string { return "mis-from-coloring" }

// Init implements Machine.
func (m *MISMachine) Init(info *NodeInfo) any {
	return misState{coloring: m.inner.Init(info).(linialState), witness: -1}
}

// Step implements Machine.
func (m *MISMachine) Step(info *NodeInfo, state any, inbox []any) (any, bool) {
	st := state.(misState)
	if !st.colorDone {
		innerInbox := make([]any, len(inbox))
		for i, s := range inbox {
			innerInbox[i] = s.(misState).coloring
		}
		next, fin := m.inner.Step(info, st.coloring, innerInbox)
		st.coloring = next.(linialState)
		if fin {
			st.colorDone = true
			st.sweep = 0
		}
		return st, false
	}
	// Sweep color classes 0..Target-1; in the round for color c, undecided
	// nodes of color c join unless a neighbor already joined. Properness of
	// the coloring means no two adjacent nodes share a sweep round, so
	// independence is maintained.
	if st.decided == 0 && st.coloring.color == st.sweep {
		taken := false
		for _, s := range inbox {
			if s.(misState).decided == 1 {
				taken = true
				break
			}
		}
		if taken {
			st.decided = 2
		} else {
			st.decided = 1
		}
	}
	// Track a witness pointer once some neighbor is in the set.
	if st.decided != 1 && st.witness < 0 {
		for p, s := range inbox {
			if s.(misState).decided == 1 {
				st.witness = p
				break
			}
		}
	}
	st.sweep++
	// One extra round beyond the last color class lets witnesses propagate.
	return st, st.sweep > m.inner.Target
}

// Output implements Machine.
func (m *MISMachine) Output(info *NodeInfo, state any) []int {
	st := state.(misState)
	out := make([]int, info.Deg)
	if st.decided == 1 {
		return out // all zeros = I
	}
	for i := range out {
		out[i] = 1 // O
	}
	w := st.witness
	if w < 0 {
		w = 0 // cannot happen after a correct run; the verifier would flag it
	}
	out[w] = 2 // P
	return out
}

// matchState drives maximal matching via a three-phase handshake per
// (proposer color, accepter color, port) schedule slot.
type matchState struct {
	coloring      linialState
	colorDone     bool
	id            int
	step          int
	matchPort     int // -1 if unmatched
	proposeTarget int // ID of the node proposed to this slot, -1 if none
	acceptedID    int // ID of the proposer just accepted, -1 if none
}

// MatchingMachine computes a maximal matching, outputting the
// problems.MaximalMatching encoding: 0 = M on the matched port, 1 = A on a
// matched node's other ports, 2 = U on every port of unmatched nodes.
type MatchingMachine struct {
	Delta int
	inner *ColoringMachine
}

// NewMatching returns a maximal matching machine for max degree delta.
func NewMatching(delta int) *MatchingMachine {
	return &MatchingMachine{Delta: delta, inner: NewColoring(delta)}
}

// Name implements Machine.
func (m *MatchingMachine) Name() string { return "matching-from-coloring" }

// Init implements Machine.
func (m *MatchingMachine) Init(info *NodeInfo) any {
	return matchState{
		coloring: m.inner.Init(info).(linialState), id: info.ID,
		matchPort: -1, proposeTarget: -1, acceptedID: -1,
	}
}

// schedule decodes a post-coloring step into (proposer color a, accepter
// color b, proposer port p, phase). Each (a, b, p) slot spans three phases:
// 0 propose, 1 accept, 2 confirm.
func (m *MatchingMachine) schedule(step int) (a, b, p, phase int, done bool) {
	k := m.inner.Target
	total := k * k * m.Delta * 3
	if step >= total {
		return 0, 0, 0, 0, true
	}
	phase = step % 3
	idx := step / 3
	p = idx % m.Delta
	idx /= m.Delta
	b = idx % k
	a = idx / k
	return a, b, p, phase, false
}

// Step implements Machine.
func (m *MatchingMachine) Step(info *NodeInfo, state any, inbox []any) (any, bool) {
	st := state.(matchState)
	if !st.colorDone {
		innerInbox := make([]any, len(inbox))
		for i, s := range inbox {
			innerInbox[i] = s.(matchState).coloring
		}
		next, fin := m.inner.Step(info, st.coloring, innerInbox)
		st.coloring = next.(linialState)
		if fin {
			st.colorDone = true
			st.step = 0
		}
		return st, false
	}
	a, b, p, phase, done := m.schedule(st.step)
	if done {
		return st, true
	}
	switch phase {
	case 0:
		// Propose: an unmatched color-a node whose port-p neighbor is an
		// unmatched color-b node proposes to it (by ID).
		st.proposeTarget = -1
		st.acceptedID = -1
		if a != b && st.matchPort < 0 && st.coloring.color == a && p < info.Deg {
			ns := inbox[p].(matchState)
			if ns.matchPort < 0 && ns.coloring.color == b {
				st.proposeTarget = ns.id
			}
		}
	case 1:
		// Accept: an unmatched color-b node picks the smallest-ID proposer
		// among neighbors whose proposeTarget names it.
		if a != b && st.matchPort < 0 && st.coloring.color == b {
			bestPort, bestID := -1, -1
			for q, s := range inbox {
				ns := s.(matchState)
				if ns.proposeTarget == st.id && (bestID == -1 || ns.id < bestID) {
					bestPort, bestID = q, ns.id
				}
			}
			if bestPort >= 0 {
				st.matchPort = bestPort
				st.acceptedID = bestID
			}
		}
	case 2:
		// Confirm: a proposer matches iff its target accepted it.
		if st.proposeTarget >= 0 && st.matchPort < 0 && p < info.Deg {
			ns := inbox[p].(matchState)
			if ns.acceptedID == st.id {
				st.matchPort = p
			}
		}
		st.proposeTarget = -1
	}
	st.step++
	_, _, _, _, doneNext := m.schedule(st.step)
	return st, doneNext
}

// Output implements Machine.
func (m *MatchingMachine) Output(info *NodeInfo, state any) []int {
	st := state.(matchState)
	out := make([]int, info.Deg)
	if st.matchPort < 0 {
		for i := range out {
			out[i] = 2 // U
		}
		return out
	}
	for i := range out {
		out[i] = 1 // A
	}
	out[st.matchPort] = 0 // M
	return out
}

// leaderState floods the minimum identifier with its distance parity.
type leaderState struct {
	minID  int
	parity int
	round  int
}

// LeaderColoringMachine 2-colors a path or even cycle by electing the
// minimum-ID node as leader and coloring by distance parity from it: the
// canonical Θ(n) global algorithm (class 5 of Corollary 1.2 with k = 1).
// It runs for exactly n rounds (each node knows n, Definition 2.1).
type LeaderColoringMachine struct{}

// Name implements Machine.
func (LeaderColoringMachine) Name() string { return "leader-2-coloring" }

// Init implements Machine.
func (LeaderColoringMachine) Init(info *NodeInfo) any {
	return leaderState{minID: info.ID, parity: 0}
}

// Step implements Machine.
func (LeaderColoringMachine) Step(info *NodeInfo, state any, inbox []any) (any, bool) {
	st := state.(leaderState)
	for _, s := range inbox {
		ns := s.(leaderState)
		cand := leaderState{minID: ns.minID, parity: 1 - ns.parity}
		if cand.minID < st.minID {
			st.minID, st.parity = cand.minID, cand.parity
		}
	}
	st.round++
	// n rounds always suffice for the min ID to flood any connected graph
	// (diameter <= n-1) and every node must wait that long to be sure.
	return st, st.round >= info.N
}

// Output implements Machine: the parity color on every half-edge.
func (LeaderColoringMachine) Output(info *NodeInfo, state any) []int {
	st := state.(leaderState)
	out := make([]int, info.Deg)
	for i := range out {
		out[i] = st.parity
	}
	return out
}

// ConstantMachine outputs a fixed label on every half-edge after zero
// rounds — the canonical class-A member (solves problems.Trivial).
type ConstantMachine struct{ Label int }

// Name implements Machine.
func (c ConstantMachine) Name() string { return "constant" }

// Init implements Machine.
func (c ConstantMachine) Init(info *NodeInfo) any { return nil }

// Step implements Machine.
func (c ConstantMachine) Step(info *NodeInfo, state any, inbox []any) (any, bool) {
	return nil, true
}

// Output implements Machine.
func (c ConstantMachine) Output(info *NodeInfo, state any) []int {
	out := make([]int, info.Deg)
	for i := range out {
		out[i] = c.Label
	}
	return out
}

// CopyInputMachine outputs each half-edge's input label as its output
// label in zero rounds (solves problems.EdgeGrouping).
type CopyInputMachine struct{}

// Name implements Machine.
func (CopyInputMachine) Name() string { return "copy-input" }

// Init implements Machine.
func (CopyInputMachine) Init(info *NodeInfo) any { return nil }

// Step implements Machine.
func (CopyInputMachine) Step(info *NodeInfo, state any, inbox []any) (any, bool) {
	return nil, true
}

// Output implements Machine.
func (CopyInputMachine) Output(info *NodeInfo, state any) []int {
	return append([]int(nil), info.In...)
}

// SinklessOrientMachine orients each edge toward the higher-ID endpoint
// within a leader-style flood... for trees we use the simple global rule:
// orient every edge toward the neighbor on the path to the maximum-ID
// node. This is a Θ(n)-round brute global algorithm used only as an
// upper-bound witness; the interesting (lower-bound) behaviour of sinkless
// orientation is exercised by round elimination, not by this machine.
type SinklessOrientMachine struct{}

// Name implements Machine.
func (SinklessOrientMachine) Name() string { return "sinkless-orient-global" }

type sinklessState struct {
	maxID   int
	viaPort int
	round   int
}

// Init implements Machine.
func (SinklessOrientMachine) Init(info *NodeInfo) any {
	return sinklessState{maxID: info.ID, viaPort: -1}
}

// Step implements Machine.
func (SinklessOrientMachine) Step(info *NodeInfo, state any, inbox []any) (any, bool) {
	st := state.(sinklessState)
	for p, s := range inbox {
		ns := s.(sinklessState)
		if ns.maxID > st.maxID {
			st.maxID = ns.maxID
			st.viaPort = p
		}
	}
	st.round++
	return st, st.round >= info.N
}

// Output implements Machine: label 0 = O (outgoing) on the port toward the
// max-ID node, label 1 = I elsewhere. On a tree every edge gets exactly
// one O (from its endpoint farther from the max-ID root), so edges are
// consistent, and every node except the root has an outgoing edge. The
// root has none, which violates the sink constraint only if its degree is
// >= 3 — callers arrange the max ID on a node of degree <= 2 (e.g. a
// leaf), which is always possible and costs nothing in the LOCAL model.
func (SinklessOrientMachine) Output(info *NodeInfo, state any) []int {
	st := state.(sinklessState)
	out := make([]int, info.Deg)
	for i := range out {
		out[i] = 1 // I
	}
	if st.viaPort >= 0 {
		out[st.viaPort] = 0 // O toward the max-ID node
	}
	return out
}
