package local

// Luby's randomized MIS algorithm (the classic O(log n)-round w.h.p.
// symmetry breaker): in each phase every undecided node draws a random
// priority; a node joins the set if its priority strictly beats all
// undecided neighbors' (ties broken by ID), and neighbors of joiners
// drop out. On trees and bounded-degree graphs it sits in the paper's
// randomized landscape strictly above the Θ(log* n) deterministic class
// witnesses — the round counts measured next to MISMachine (Linial-based,
// deterministic Θ(log* n)) exhibit the deterministic/randomized contrast
// the landscape's class-3 row is about.

// lubyState is the per-node phase state.
type lubyState struct {
	decided  int8 // 0 undecided, 1 in set, 2 out
	priority int64
	id       int
	witness  int // port of an in-set neighbor (for the P output)
	subRound int // 0 = exchange priorities, 1 = exchange decisions
}

// LubyMIS computes a maximal independent set with Luby's algorithm,
// emitting the problems.MIS half-edge encoding (I on members' half-edges;
// O everywhere on non-members except P on one witness port).
type LubyMIS struct{}

// Name implements Machine.
func (LubyMIS) Name() string { return "luby-mis" }

// Init implements Machine.
func (LubyMIS) Init(info *NodeInfo) any {
	if info.Rand == nil {
		panic("local: LubyMIS needs RunOpts.Random")
	}
	return lubyState{priority: info.Rand.Int63(), id: info.ID, witness: -1}
}

// Step implements Machine. Each phase takes two rounds: one to exchange
// (decided, priority) snapshots and decide, one to propagate decisions so
// losers retire and witnesses attach.
func (LubyMIS) Step(info *NodeInfo, state any, inbox []any) (any, bool) {
	st := state.(lubyState)
	if st.subRound == 0 {
		if st.decided == 0 {
			best := true
			for _, raw := range inbox {
				n := raw.(lubyState)
				if n.decided != 0 {
					continue
				}
				if n.priority > st.priority || (n.priority == st.priority && n.id > st.id) {
					best = false
					break
				}
			}
			if best {
				st.decided = 1
			}
		}
		st.subRound = 1
		return st, false
	}
	// Decision-propagation round.
	if st.decided != 1 {
		for p, raw := range inbox {
			if raw.(lubyState).decided == 1 {
				st.decided = 2
				if st.witness < 0 {
					st.witness = p
				}
			}
		}
	}
	st.subRound = 0
	if st.decided == 0 {
		st.priority = info.Rand.Int63()
		return st, false
	}
	// Decided nodes idle until undecided neighbors finish; a node may
	// stop once it and all neighbors are decided.
	for _, raw := range inbox {
		if raw.(lubyState).decided == 0 {
			return st, false
		}
	}
	return st, true
}

// Output implements Machine.
func (LubyMIS) Output(info *NodeInfo, state any) []int {
	st := state.(lubyState)
	out := make([]int, info.Deg)
	if st.decided == 1 {
		return out // all I (0)
	}
	for i := range out {
		out[i] = 1 // O
	}
	w := st.witness
	if w < 0 {
		w = 0
	}
	out[w] = 2 // P
	return out
}
