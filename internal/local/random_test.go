package local

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/problems"
	"repro/internal/re"
)

func TestEstimateLocalFailureCalibration(t *testing.T) {
	// Random k-coloring: per-edge failure probability is exactly 1/k.
	g := graph.Cycle(24)
	for _, k := range []int{2, 4, 8} {
		p := problems.Coloring(k, 2)
		est, err := EstimateLocalFailure(g, RandomColoringMachine{K: k}, p, nil, 3000, 17)
		if err != nil {
			t.Fatal(err)
		}
		want := 1.0 / float64(k)
		if math.Abs(est.Local-want) > 0.35*want+0.02 {
			t.Errorf("k=%d: empirical local failure %.4f, want ~%.4f", k, est.Local, want)
		}
	}
}

func TestRandomizedFixReducesFailure(t *testing.T) {
	// More fix rounds => lower local failure probability; with a generous
	// palette the failure should drop fast.
	g := graph.Cycle(32)
	p := problems.Coloring(6, 2)
	prev := 1.0
	for _, rounds := range []int{0, 1, 3} {
		est, err := EstimateLocalFailure(g, RandomizedFixMachine{K: 6, FixRounds: rounds}, p, nil, 1500, 23)
		if err != nil {
			t.Fatal(err)
		}
		if est.Local > prev+0.02 {
			t.Errorf("fixRounds=%d: failure %.4f did not improve on %.4f", rounds, est.Local, prev)
		}
		prev = est.Local
	}
	if prev > 0.05 {
		t.Errorf("after 3 fix rounds failure still %.4f", prev)
	}
}

// TestTheorem34BoundDominatesEmpirical connects the Theorem 3.4 formula to
// measurement: the iterated bound on the derived algorithms' local failure
// (starting from the empirical p of a randomized algorithm) is, by
// construction, at least the empirical failure itself at step 0 and grows
// monotonically in clamped value — the bound is a valid (if enormous)
// over-approximation.
func TestTheorem34BoundDominatesEmpirical(t *testing.T) {
	g := graph.Cycle(24)
	p := problems.Coloring(8, 2)
	est, err := EstimateLocalFailure(g, RandomColoringMachine{K: 8}, p, nil, 2000, 29)
	if err != nil {
		t.Fatal(err)
	}
	start := re.FailureBound{Log2P: math.Log2(est.Local + 1e-9)}
	next := re.Step34(start, re.Theorem34Params{Delta: 2, SigmaIn: 1, SigmaOut: 8, SigmaROut: 255, T: 1})
	if next.Value() < est.Local {
		t.Errorf("Theorem 3.4 step produced a bound %.4g below the measured p %.4g", next.Value(), est.Local)
	}
}

func TestRandomColoringNeedsRandom(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic without RunOpts.Random")
		}
	}()
	g := graph.Path(2)
	_, _ = Run(g, RandomColoringMachine{K: 3}, RunOpts{})
}
