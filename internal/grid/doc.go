// Package grid implements Section 5 of the paper: oriented
// d-dimensional toroidal grids and the decidability of LCL complexities
// on them.
//
// The package has two halves:
//
//   - the PROD-LOCAL model (Definition 5.2), in which every node holds
//     one identifier per dimension (equal iff the nodes share that
//     coordinate), the LOCAL→PROD-LOCAL simulation of Proposition 5.3,
//     and the complexity-class witnesses for the Figure 1 (top right)
//     landscape: O(1) (direction labeling), Θ(log* n) (per-dimension
//     Cole–Vishkin coloring), and Θ(d√n) (line-global 2-coloring) — see
//     prodlocal.go;
//   - the oriented-grid decider behind Classify: dimension 1 reduces
//     exactly to the oriented-cycle automaton analysis, and higher
//     dimensions factor per axis, combining line verdicts into a grid
//     verdict on the shared complexity lattice — see decide.go.
//
// Verdicts surface through the decide registry (mode "grid") and can be
// precomputed into sealed landscape tables (internal/store).
package grid
