package grid

import (
	"math/rand"

	"repro/internal/graph"
)

// Conjecture 1.6 support: the paper's grid speed-up (Theorem 1.4) uses
// the orientation essentially — Proposition 5.5 extracts a local order
// from the consistent edge directions — and the paper conjectures, but
// does not prove, that the ω(1)–o(log* n) gap also holds on *unoriented*
// grids ("those graphs do not locally induce an implicit order on
// vertices"). StripOrientation produces exactly the unoriented object:
// the underlying torus graph with dimension labels removed and port
// numberings re-randomized, so nothing about the embedding survives at a
// node except its degree. Algorithms that need the orientation
// (DirectionMachine, per-dimension coloring, the PROD-LOCAL transforms)
// cannot run on the result even in principle — their inputs are gone —
// while ID-based LOCAL algorithms (Linial coloring and everything in
// class B) are unaffected; the tests pin both facts.
func StripOrientation(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	h := graph.New(g.N())
	type edge struct{ u, v int }
	var edges []edge
	g.Edges(func(u, _, v, _ int) { edges = append(edges, edge{u, v}) })
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, e := range edges {
		// Randomize endpoint order too: a consistent "first endpoint"
		// convention would itself leak an orientation bit.
		if rng.Intn(2) == 0 {
			h.AddEdge(e.u, e.v)
		} else {
			h.AddEdge(e.v, e.u)
		}
	}
	return h
}

// HasOrientation reports whether any half-edge of g carries a dimension
// label — the machine-checkable difference between the oriented grids of
// Section 5 and the unoriented grids of Conjecture 1.6.
func HasOrientation(g *graph.Graph) bool {
	for v := 0; v < g.N(); v++ {
		for p := 0; p < g.Deg(v); p++ {
			if g.DimLabel(v, p) >= 0 {
				return true
			}
		}
	}
	return false
}
