package grid

import (
	"fmt"
	"testing"

	"repro/internal/decide"
	"repro/internal/lcl"
	"repro/internal/problems"
)

func mustClassify(t *testing.T, p *lcl.Problem, dims int) *Verdict {
	t.Helper()
	v, err := Classify(p, dims)
	if err != nil {
		t.Fatalf("%s dims=%d: %v", p.Name, dims, err)
	}
	return v
}

func TestClassifyDim1IsOrientedCycles(t *testing.T) {
	// Consistent orientation is the Section 5 poster child: Θ(n) on
	// unoriented cycles, O(1) once the orientation is given.
	v := mustClassify(t, problems.ConsistentOrientation(), 1)
	if v.Class != decide.Constant || !v.Exact || v.Line == nil {
		t.Fatalf("consistent orientation on the 1-torus: %+v", v)
	}
	if v := mustClassify(t, problems.Coloring(3, 2), 1); v.Class != decide.LogStar {
		t.Fatalf("3-coloring on the 1-torus: %+v", v)
	}
	if v := mustClassify(t, problems.Coloring(2, 2), 1); v.Class != decide.Linear {
		t.Fatalf("2-coloring on the 1-torus: %+v", v)
	}
}

func TestClassifyDirectionProblemConstant(t *testing.T) {
	// "Recover the orientation" is the canonical O(1) grid problem; the
	// product-tiling rule finds its 0-round witness.
	v := mustClassify(t, DirectionProblem(2), 2)
	if v.Class != decide.Constant || !v.Exact {
		t.Fatalf("direction problem: %+v", v)
	}
}

func TestClassifyDim0TwoColoringIsSquareRoot(t *testing.T) {
	// 2-coloring along dimension 0 (Dim0Problem) is the Θ(√n) landscape
	// witness: axis 0 is a global 2-coloring of an n^{1/2}-node line,
	// axis 1 is trivial, and the torus class is the lattice join.
	v := mustClassify(t, Dim0Problem(2), 2)
	if v.Class != decide.NRoot(2) || !v.Exact {
		t.Fatalf("dim0 2-coloring: %+v", v)
	}
	if len(v.Axes) != 2 || v.Axes[0].Class != "Θ(n)" || v.Axes[1].Class != "O(1)" {
		t.Fatalf("per-axis classes: %+v", v.Axes)
	}
	if v.Class.String() != "Θ(n^{1/2})" {
		t.Fatalf("lattice spelling: %q", v.Class)
	}
}

// dim0Coloring generalizes Dim0Problem to q colors along dimension 0.
func dim0Coloring(d, q int) *lcl.Problem {
	inNames := make([]string, 2*d)
	for i := range inNames {
		inNames[i] = fmt.Sprintf("dir%d", i)
	}
	outNames := make([]string, q+1)
	for c := 0; c < q; c++ {
		outNames[c] = fmt.Sprintf("c%d", c)
	}
	outNames[q] = "x"
	b := lcl.NewBuilder(fmt.Sprintf("grid-%dd-dim0-%dcoloring", d, q), inNames, outNames)
	deg := 2 * d
	for c := 0; c < q; c++ {
		cfg := make([]string, deg)
		cfg[0], cfg[1] = outNames[c], outNames[c]
		for i := 2; i < deg; i++ {
			cfg[i] = "x"
		}
		b.Node(cfg...)
		for e := c + 1; e < q; e++ {
			b.Edge(outNames[c], outNames[e])
		}
		b.Allow("dir0", outNames[c])
		b.Allow("dir1", outNames[c])
	}
	b.Edge("x", "x")
	for i := 2; i < 2*d; i++ {
		b.Allow(inNames[i], "x")
	}
	return b.MustBuild()
}

func TestClassifyDim0ThreeColoringIsLogStar(t *testing.T) {
	v := mustClassify(t, dim0Coloring(2, 3), 2)
	if v.Class != decide.LogStar || !v.Exact {
		t.Fatalf("dim0 3-coloring: %+v", v)
	}
}

func TestClassifyGridColoringIsHonestlyUnknown(t *testing.T) {
	// Proper 6^2-coloring of the torus couples the axes (all four
	// half-edges carry the node's color), so it is outside the decided
	// fragments; the verdict must be Unknown — never a guess — with the
	// line relaxation as a diagnostic.
	v := mustClassify(t, GridColoringProblem(2), 2)
	if v.Class != decide.Unknown || v.Exact {
		t.Fatalf("grid coloring: %+v", v)
	}
	if v.Line == nil || v.Line.Class != "Θ(log* n)" {
		t.Fatalf("line diagnostic: %+v", v.Line)
	}
}

func TestClassifyInputFreeUnsolvable(t *testing.T) {
	// Monochromatic degree-4 configurations with an empty edge
	// constraint: the axis-line relaxation has no closed walks.
	p := lcl.NewBuilder("grid-dead", nil, []string{"a"}).
		Node("a", "a", "a", "a").MustBuild()
	v := mustClassify(t, p, 2)
	if v.Class != decide.Unsolvable || !v.Exact {
		t.Fatalf("dead problem: %+v", v)
	}
	// No degree-4 configuration at all.
	q := lcl.NewBuilder("grid-degless", nil, []string{"a"}).
		Node("a", "a").Edge("a", "a").MustBuild()
	if v := mustClassify(t, q, 2); v.Class != decide.Unsolvable {
		t.Fatalf("degree-less problem: %+v", v)
	}
}

func TestClassifyCoupledAxesIsUnknown(t *testing.T) {
	// Direction-labeled but coupled: both axes must agree on the color,
	// so a combination of per-axis pairs is forbidden and the exact
	// fragment does not apply.
	b := lcl.NewBuilder("grid-coupled", []string{"dir0", "dir1", "dir2", "dir3"},
		[]string{"a0", "b0", "a1", "b1"})
	b.Node("a0", "a0", "a1", "a1")
	b.Node("b0", "b0", "b1", "b1")
	b.Edge("a0", "b0").Edge("a1", "b1")
	b.Allow("dir0", "a0", "b0").Allow("dir1", "a0", "b0")
	b.Allow("dir2", "a1", "b1").Allow("dir3", "a1", "b1")
	v := mustClassify(t, b.MustBuild(), 2)
	if v.Class != decide.Unknown || v.Exact {
		t.Fatalf("coupled problem: %+v", v)
	}
}

func TestClassifyRejectsBadShapes(t *testing.T) {
	// Input count matches neither "input-free" nor "2*dims directions".
	p := lcl.NewBuilder("grid-odd-inputs", []string{"i0", "i1", "i2"}, []string{"a"}).
		Node("a", "a", "a", "a").Edge("a", "a").
		Allow("i0", "a").Allow("i1", "a").Allow("i2", "a").MustBuild()
	if _, err := Classify(p, 2); err == nil {
		t.Fatal("mismatched input alphabet accepted")
	}
	if _, err := Classify(problems.Trivial(2), MaxDims+1); err == nil {
		t.Fatal("dims out of range accepted")
	}
	// dims <= 0 selects the default instead of failing.
	if v, err := Classify(GridColoringProblem(2), 0); err != nil || v.Dims != DefaultDims {
		t.Fatalf("default dims: %+v, %v", v, err)
	}
}

func TestClassifyDirectionLabeledWithoutConfigsIsUnsolvable(t *testing.T) {
	// Direction-labeled but no degree-4 configuration at all: exact
	// unsolvability, same as the input-free branch — not a
	// factorization failure.
	b := lcl.NewBuilder("grid-dir-dead", []string{"dir0", "dir1", "dir2", "dir3"}, []string{"a"})
	b.Node("a", "a").Edge("a", "a")
	for _, d := range []string{"dir0", "dir1", "dir2", "dir3"} {
		b.Allow(d, "a")
	}
	v := mustClassify(t, b.MustBuild(), 2)
	if v.Class != decide.Unsolvable || !v.Exact {
		t.Fatalf("direction-labeled dead problem: %+v", v)
	}
}
