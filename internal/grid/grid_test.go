package grid

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/ramsey"
)

func nodeColors(g *graph.Graph, out []int) []int {
	colors := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		colors[v] = out[g.HalfEdge(v, 0)]
	}
	return colors
}

func TestGridColoring2D(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for _, side := range []int{3, 5, 8, 16} {
		sides := []int{side, side}
		g := graph.Torus(sides...)
		ids := RandomDimIDs(sides, rng)
		res, err := Run(g, sides, ids, GridColoring{D: 2}, 0)
		if err != nil {
			t.Fatalf("side=%d: %v", side, err)
		}
		p := GridColoringProblem(2)
		if vs := p.Verify(g, nil, res.Output); len(vs) != 0 {
			t.Errorf("side=%d: %v", side, vs[0])
		}
		bound := 4*(ramsey.LogStarInt(side)+4) + 8
		if res.Rounds > bound {
			t.Errorf("side=%d: %d rounds exceeds O(log* s) bound %d", side, res.Rounds, bound)
		}
	}
}

func TestGridColoring1DAnd3D(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	// d=1: oriented cycle.
	sides1 := []int{24}
	g1 := graph.Torus(sides1...)
	res, err := Run(g1, sides1, RandomDimIDs(sides1, rng), GridColoring{D: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vs := GridColoringProblem(1).Verify(g1, nil, res.Output); len(vs) != 0 {
		t.Errorf("1d: %v", vs[0])
	}
	// d=3.
	sides3 := []int{3, 4, 5}
	g3 := graph.Torus(sides3...)
	res3, err := Run(g3, sides3, RandomDimIDs(sides3, rng), GridColoring{D: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vs := GridColoringProblem(3).Verify(g3, nil, res3.Output); len(vs) != 0 {
		t.Errorf("3d: %v", vs[0])
	}
}

func TestDirectionMachineZeroRounds(t *testing.T) {
	sides := []int{4, 4}
	g := graph.Torus(sides...)
	res, err := Run(g, sides, SequentialDimIDs(sides), DirectionMachine{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 1 {
		t.Errorf("direction labeling used %d rounds", res.Rounds)
	}
	if vs := DirectionProblem(2).Verify(g, nil, res.Output); len(vs) != 0 {
		t.Errorf("direction labeling invalid: %v", vs[0])
	}
}

func TestDim0TwoColoringGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, sides := range [][]int{{4, 3}, {8, 5}, {16, 4}} {
		g := graph.Torus(sides...)
		res, err := Run(g, sides, RandomDimIDs(sides, rng), Dim0TwoColoring{}, 0)
		if err != nil {
			t.Fatalf("%v: %v", sides, err)
		}
		p := Dim0Problem(2)
		in := DirectionInputs(g.Deg, g.DimLabel, g.HalfEdge, g.N(), g.NumHalfEdges())
		if vs := p.Verify(g, in, res.Output); len(vs) != 0 {
			t.Errorf("%v: %v", sides, vs[0])
		}
		// Global: rounds = s0 exactly (the flood runs the full side).
		if res.Rounds != sides[0] {
			t.Errorf("%v: rounds = %d, want %d", sides, res.Rounds, sides[0])
		}
	}
}

func TestGridLandscapeSeparation(t *testing.T) {
	// On one 16x16 torus: O(1) << Θ(log* s) << Θ(s).
	rng := rand.New(rand.NewSource(103))
	sides := []int{16, 16}
	g := graph.Torus(sides...)
	ids := RandomDimIDs(sides, rng)
	dir, err := Run(g, sides, ids, DirectionMachine{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	col, err := Run(g, sides, ids, GridColoring{D: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	glob, err := Run(g, sides, ids, Dim0TwoColoring{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(dir.Rounds <= 1 && dir.Rounds < col.Rounds && col.Rounds < glob.Rounds) {
		t.Errorf("separation violated: %d, %d, %d", dir.Rounds, col.Rounds, glob.Rounds)
	}
}

func TestCombinedIDsUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	sides := []int{5, 7}
	g := graph.Torus(sides...)
	ids := CombinedIDs(g, sides, RandomDimIDs(sides, rng))
	seen := map[int]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatal("combined IDs collide")
		}
		seen[id] = true
	}
}

// TestProposition53 runs a LOCAL algorithm (Linial coloring) on the torus
// using combined PROD-LOCAL identifiers — the simulation direction of
// Proposition 5.3.
func TestProposition53(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	sides := []int{6, 6}
	g := graph.Torus(sides...)
	ids := CombinedIDs(g, sides, RandomDimIDs(sides, rng))
	res, err := local.Run(g, local.NewColoring(4), local.RunOpts{IDs: ids})
	if err != nil {
		t.Fatal(err)
	}
	colors := nodeColors(g, res.Output)
	g.Edges(func(u, pu, v, pv int) {
		if colors[u] == colors[v] {
			t.Fatalf("LOCAL-on-PROD-LOCAL coloring improper on edge {%d,%d}", u, v)
		}
	})
}

// TestProposition55OrderFromOrientation exercises the "free local order"
// observation: with SequentialDimIDs (identifiers = coordinates, which the
// orientation provides implicitly), GridColoring is deterministic in the
// grid structure alone and stays correct on any torus size — the
// order-invariant O(1)-ability Proposition 5.5 exploits.
func TestProposition55OrderFromOrientation(t *testing.T) {
	for _, side := range []int{4, 9, 12} {
		sides := []int{side, side}
		g := graph.Torus(sides...)
		res, err := Run(g, sides, SequentialDimIDs(sides), GridColoring{D: 2}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if vs := GridColoringProblem(2).Verify(g, nil, res.Output); len(vs) != 0 {
			t.Errorf("side=%d: %v", side, vs[0])
		}
	}
}

func TestRunRejectsNonTermination(t *testing.T) {
	sides := []int{3, 3}
	g := graph.Torus(sides...)
	_, err := Run(g, sides, SequentialDimIDs(sides), forever{}, 5)
	if err == nil {
		t.Error("non-terminating machine not caught")
	}
}

type forever struct{}

func (forever) Name() string                           { return "forever" }
func (forever) Init(*NodeInfo) any                     { return nil }
func (forever) Step(*NodeInfo, any, []any) (any, bool) { return nil, false }
func (forever) Output(info *NodeInfo, _ any) []int     { return make([]int, info.Deg) }
