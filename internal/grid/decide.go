package grid

import (
	"fmt"
	"strings"

	"repro/internal/classify"
	"repro/internal/decide"
	"repro/internal/lcl"
	"repro/internal/re"
)

// This file is the oriented-grid decision procedure behind the "grid"
// decider of the classification service. The setting is the paper's
// Theorem 1.4 / Section 5: LCLs on consistently oriented d-dimensional
// tori, where the only complexities are O(1), Θ(log* n), and Θ(n^{1/j})
// for j <= d. For d = 1 the torus is the oriented cycle and the
// classification is exactly decidable (classify.OrientedCycles). For
// d >= 2 exact classification is undecidable in general — LCLs on
// oriented grids encode Wang tilings — so the decider decides the
// fragments it can and returns the lattice's honest Unknown otherwise:
//
//   - Direction-labeled problems (inputs are exactly the 2d orientation
//     labels, the formalism Dim0Problem uses, with inputs promised to
//     match the orientation as DirectionInputs produces them) that
//     factor by axis are decided EXACTLY: each axis induces an oriented-
//     cycle problem over its own palette, classified by
//     classify.OrientedCycles, and the torus class is the lattice JOIN
//     of the per-axis classes with Θ(n)_axis mapping to Θ(n^{1/d})_torus
//     (an axis line has n^{1/d} nodes). Upper bound: solve every axis's
//     lines independently; factorization makes the combination valid.
//     Lower bound: a torus algorithm restricted to one axis line (other
//     IDs fixed canonically) is an oriented-cycle algorithm for that
//     axis's problem with the same round count, so the axis lower
//     bounds transfer.
//
//   - Input-free problems get sound partial rules: the axis-line
//     relaxation (the degree-2 constraint keeping pairs extendable to a
//     full degree-2d configuration) is a necessary condition, so its
//     unsolvability certifies torus unsolvability; a product tiling
//     (per-axis self-loop pairs forming an allowed configuration) or
//     0-round solvability certifies O(1).

// DefaultDims is the grid dimension when a request leaves it zero: the
// paper's 2-dimensional tori.
const DefaultDims = 2

// MaxDims bounds the supported dimension (the degree-2d configuration
// space and the factorization sweep grow exponentially in d).
const MaxDims = 3

// combinationBudget caps the factorization / product-tiling sweeps; a
// problem whose pair space blows the budget skips those rules (the
// verdict degrades to Unknown, never to a wrong answer).
const combinationBudget = 1 << 22

// LineResult is the wire/snapshot-friendly summary of one oriented-cycle
// classification (classify.Result with the class spelled out).
type LineResult struct {
	Class   string `json:"class"`
	Period  int    `json:"period,omitempty"`
	Witness string `json:"witness,omitempty"`
}

func lineResult(r *classify.Result) *LineResult {
	return &LineResult{Class: r.Class.String(), Period: r.Period, Witness: r.Witness}
}

// AxisResult is the exact classification of one axis of a direction-
// labeled, axis-factored problem.
type AxisResult struct {
	Axis int `json:"axis"`
	LineResult
}

// Verdict is the oriented-grid classification outcome. It is a plain
// value, so it memoizes and persists through snapshots.
type Verdict struct {
	// Class is the shared-lattice verdict: exact for dims = 1 and for
	// axis-factored direction-labeled problems; otherwise Unsolvable and
	// Constant verdicts are witnessed and everything else is Unknown.
	Class decide.Class `json:"class"`
	Dims  int          `json:"dims"`
	// Line is the oriented-cycle classification of the problem itself
	// (dims = 1, exact) or of the axis-line relaxation (input-free
	// dims >= 2, diagnostic).
	Line *LineResult `json:"line,omitempty"`
	// Axes carries the exact per-axis classes of an axis-factored
	// direction-labeled problem; Class is their lattice join (with
	// Θ(n) per axis becoming Θ(n^{1/dims}) on the torus).
	Axes []AxisResult `json:"axes,omitempty"`
	// Exact reports the verdict is a full classification, not a sound
	// partial one.
	Exact bool `json:"exact"`
	// Reason names the rule that decided (or why the verdict is Unknown).
	Reason string `json:"reason,omitempty"`
}

// Classify decides an LCL on consistently oriented dims-dimensional
// tori. dims <= 0 selects DefaultDims. The problem is either input-free
// or direction-labeled: exactly 2*dims input labels where inputs 2j and
// 2j+1 mark the two directions of axis j and are promised to match the
// grid's orientation.
func Classify(p *lcl.Problem, dims int) (*Verdict, error) {
	if dims <= 0 {
		dims = DefaultDims
	}
	if dims > MaxDims {
		return nil, fmt.Errorf("grid: dims = %d out of supported range [1, %d]", dims, MaxDims)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch {
	case p.NumIn() == 1:
		return classifyInputFree(p, dims)
	case p.NumIn() == 2*dims:
		return classifyDirectionLabeled(p, dims)
	default:
		return nil, fmt.Errorf("grid: problem must be input-free or carry exactly the %d direction labels (has %d inputs)", 2*dims, p.NumIn())
	}
}

// classifyInputFree handles problems without inputs: exact on dims = 1,
// sound partial rules above.
func classifyInputFree(p *lcl.Problem, dims int) (*Verdict, error) {
	if dims == 1 {
		res, err := classify.OrientedCycles(p)
		if err != nil {
			return nil, err
		}
		return &Verdict{
			Class:  res.Class.Lattice(),
			Dims:   1,
			Line:   lineResult(res),
			Exact:  true,
			Reason: "dims=1: the oriented cycle classification is exact",
		}, nil
	}

	deg := 2 * dims
	v := &Verdict{Dims: dims}
	if len(p.Node[deg]) == 0 {
		v.Class = decide.Unsolvable
		v.Exact = true
		v.Reason = fmt.Sprintf("no allowed degree-%d node configuration", deg)
		return v, nil
	}
	line, err := classify.OrientedCycles(lineRelaxation(p, extendablePairs(p, deg)))
	if err != nil {
		return nil, err
	}
	v.Line = lineResult(line)
	if line.Class == classify.Unsolvable {
		// A valid torus labeling would induce a valid axis-line labeling
		// of the relaxation; none exists for any length.
		v.Class = decide.Unsolvable
		v.Exact = true
		v.Reason = "axis-line relaxation admits no labeling of any length"
		return v, nil
	}
	if ok, witness := productTiling(p, dims, deg); ok {
		v.Class = decide.Constant
		v.Exact = true
		v.Reason = "constant product tiling " + witness + " (0 rounds given the orientation)"
		return v, nil
	}
	if _, ok := re.ZeroRoundSolvable(p, []int{deg}); ok {
		v.Class = decide.Constant
		v.Exact = true
		v.Reason = "0-round solvable without using the orientation"
		return v, nil
	}
	v.Class = decide.Unknown
	v.Reason = "no sound rule applies; exact classification of input-free LCLs on d >= 2 oriented grids encodes tiling problems"
	return v, nil
}

// classifyDirectionLabeled handles problems whose inputs are the 2*dims
// direction labels. Axis-factored problems are decided exactly; the
// rest are Unknown.
func classifyDirectionLabeled(p *lcl.Problem, dims int) (*Verdict, error) {
	v := &Verdict{Dims: dims}
	if len(p.Node[2*dims]) == 0 {
		// Every torus node has degree 2*dims; with no allowed
		// configuration this is exact unsolvability, same as the
		// input-free branch — not a factorization failure.
		v.Class = decide.Unsolvable
		v.Exact = true
		v.Reason = fmt.Sprintf("no allowed degree-%d node configuration", 2*dims)
		return v, nil
	}
	palettes, reason := axisPalettes(p, dims)
	if palettes == nil {
		v.Class = decide.Unknown
		v.Reason = "not axis-factored: " + reason
		return v, nil
	}
	axisPairs, reason := splitByAxis(p, dims, palettes)
	if axisPairs == nil {
		v.Class = decide.Unknown
		v.Reason = "not axis-factored: " + reason
		return v, nil
	}

	// Classify each axis's induced oriented-cycle problem and join.
	join := decide.Unsolvable
	var reasons []string
	for j := 0; j < dims; j++ {
		res, err := classify.OrientedCycles(axisProblem(p, j, palettes[j], axisPairs[j]))
		if err != nil {
			return nil, err
		}
		v.Axes = append(v.Axes, AxisResult{Axis: j, LineResult: *lineResult(res)})
		if res.Class == classify.Unsolvable {
			// Unsolvable is the lattice bottom, not an absorbing element:
			// handle it explicitly — one dead axis kills the torus.
			v.Class = decide.Unsolvable
			v.Exact = true
			v.Reason = fmt.Sprintf("axis %d admits no labeling of any length", j)
			return v, nil
		}
		axis := res.Class.Lattice()
		if res.Class == classify.Global {
			// Θ(n) along a single axis line of n^{1/dims} nodes.
			axis = decide.NRoot(dims)
		}
		join = join.Join(axis)
		reasons = append(reasons, fmt.Sprintf("axis %d: %s", j, axis))
	}
	v.Class = join
	v.Exact = true
	v.Reason = "axis-factored; torus class is the lattice join of " + strings.Join(reasons, ", ")
	return v, nil
}

// axisPalettes maps each axis to its output palette. It requires every
// output label to be permitted on both directions of exactly one axis
// (palettes symmetric per axis and pairwise disjoint) — the first half
// of the axis-factorization condition. A nil return carries the reason.
func axisPalettes(p *lcl.Problem, dims int) ([][]int, string) {
	axisOf := make([]int, p.NumOut())
	palettes := make([][]int, dims)
	for o := 0; o < p.NumOut(); o++ {
		axisOf[o] = -1
		for j := 0; j < dims; j++ {
			fwd, bwd := p.GAllowed(2*j, o), p.GAllowed(2*j+1, o)
			if fwd != bwd {
				return nil, fmt.Sprintf("output %s is allowed on only one direction of axis %d", p.OutNames[o], j)
			}
			if !fwd {
				continue
			}
			if axisOf[o] != -1 {
				return nil, fmt.Sprintf("output %s is allowed on axes %d and %d", p.OutNames[o], axisOf[o], j)
			}
			axisOf[o] = j
		}
		if axisOf[o] == -1 {
			continue // dead label: allowed nowhere, can never appear
		}
		palettes[axisOf[o]] = append(palettes[axisOf[o]], o)
	}
	for j, pal := range palettes {
		if len(pal) == 0 {
			return nil, fmt.Sprintf("axis %d has an empty palette", j)
		}
	}
	return palettes, ""
}

// splitByAxis derives the per-axis pair sets from the degree-2*dims node
// constraint and verifies the constraint factors: every configuration
// splits into one pair per axis palette, and every combination of such
// pairs is allowed. A nil return carries the reason.
func splitByAxis(p *lcl.Problem, dims int, palettes [][]int) ([][][2]int, string) {
	deg := 2 * dims
	if len(p.Node[deg]) == 0 {
		return nil, fmt.Sprintf("no allowed degree-%d node configuration", deg)
	}
	axisOf := make([]int, p.NumOut())
	for i := range axisOf {
		axisOf[i] = -1
	}
	for j, pal := range palettes {
		for _, o := range pal {
			axisOf[o] = j
		}
	}
	pairSets := make([]map[[2]int]bool, dims)
	for j := range pairSets {
		pairSets[j] = map[[2]int]bool{}
	}
	for _, m := range p.Node[deg] {
		split := make([][]int, dims)
		for _, o := range m {
			if axisOf[o] == -1 {
				return nil, fmt.Sprintf("configuration %v uses dead label %s", m, p.OutNames[o])
			}
			split[axisOf[o]] = append(split[axisOf[o]], o)
		}
		for j, labels := range split {
			if len(labels) != 2 {
				return nil, fmt.Sprintf("a configuration has %d labels on axis %d, want 2", len(labels), j)
			}
			pairSets[j][[2]int{labels[0], labels[1]}] = true
		}
	}
	out := make([][][2]int, dims)
	total := 1
	for j, set := range pairSets {
		for pr := range set {
			out[j] = append(out[j], pr)
		}
		total *= len(out[j])
		if total > combinationBudget {
			return nil, "factorization sweep over budget"
		}
	}
	// Completeness: every combination of per-axis pairs must be allowed,
	// otherwise the constraint couples axes and per-axis solving is
	// unsound.
	labels := make([]int, 0, deg)
	var rec func(axis int) bool
	rec = func(axis int) bool {
		if axis == dims {
			return p.NodeAllowed(lcl.NewMultiset(labels...))
		}
		for _, pr := range out[axis] {
			labels = append(labels, pr[0], pr[1])
			ok := rec(axis + 1)
			labels = labels[:len(labels)-2]
			if !ok {
				return false
			}
		}
		return true
	}
	if !rec(0) {
		return nil, "the node constraint couples axes (a combination of per-axis pairs is forbidden)"
	}
	return out, ""
}

// axisProblem builds the oriented-cycle problem one axis induces: the
// axis palette as outputs, the axis pair set as the degree-2 constraint,
// and the edge constraint restricted to the palette.
func axisProblem(p *lcl.Problem, axis int, palette []int, pairs [][2]int) *lcl.Problem {
	names := make([]string, len(palette))
	index := make([]int, p.NumOut())
	for i, o := range palette {
		names[i] = p.OutNames[o]
		index[o] = i
	}
	b := lcl.NewBuilder(fmt.Sprintf("%s-axis%d", p.Name, axis), nil, names)
	for _, pr := range pairs {
		b.Node(names[index[pr[0]]], names[index[pr[1]]])
	}
	inPalette := make([]bool, p.NumOut())
	for _, o := range palette {
		inPalette[o] = true
	}
	for _, m := range p.Edge {
		if inPalette[m[0]] && inPalette[m[1]] {
			b.Edge(names[index[m[0]]], names[index[m[1]]])
		}
	}
	return b.MustBuild()
}

// extendablePairs returns the ordered pairs (x, y) of output labels that
// occur together inside some allowed degree-deg configuration — the
// state space of the axis-line relaxation. The pair (x, x) requires x
// with multiplicity two.
func extendablePairs(p *lcl.Problem, deg int) [][2]int {
	k := p.NumOut()
	seen := make([]bool, k*k)
	for _, m := range p.Node[deg] {
		count := make([]int, k)
		for _, l := range m {
			count[l]++
		}
		for x := 0; x < k; x++ {
			if count[x] == 0 {
				continue
			}
			for y := 0; y < k; y++ {
				if count[y] == 0 || (x == y && count[x] < 2) {
					continue
				}
				seen[x*k+y] = true
			}
		}
	}
	var out [][2]int
	for x := 0; x < k; x++ {
		for y := 0; y < k; y++ {
			if seen[x*k+y] {
				out = append(out, [2]int{x, y})
			}
		}
	}
	return out
}

// lineRelaxation builds the oriented-cycle problem a torus labeling
// induces along one axis: degree-2 configurations are the extendable
// pairs, the edge constraint is inherited.
func lineRelaxation(p *lcl.Problem, pairs [][2]int) *lcl.Problem {
	b := lcl.NewBuilder(p.Name+"-line", nil, p.OutNames)
	for _, pr := range pairs {
		b.Node(p.OutNames[pr[0]], p.OutNames[pr[1]])
	}
	for _, m := range p.Edge {
		b.Edge(p.OutNames[m[0]], p.OutNames[m[1]])
	}
	return b.MustBuild()
}

// productTiling searches for per-axis self-loop pairs — (x_j, y_j) with
// {y_j, x_j} ∈ E — whose combined multiset is an allowed degree-deg
// configuration. Such a tuple tiles the torus in 0 rounds: every node
// outputs x_j on its −j port and y_j on its +j port. Budget-bounded;
// over budget reports false (a missed witness, never a wrong one).
func productTiling(p *lcl.Problem, dims, deg int) (bool, string) {
	k := p.NumOut()
	var loops [][2]int
	for x := 0; x < k; x++ {
		for y := 0; y < k; y++ {
			if p.EdgeAllowed(y, x) {
				loops = append(loops, [2]int{x, y})
			}
		}
	}
	if len(loops) == 0 {
		return false, ""
	}
	if pow := intPow(len(loops), dims); pow < 0 || pow > combinationBudget {
		return false, ""
	}
	labels := make([]int, 0, deg)
	chosen := make([][2]int, 0, dims)
	var rec func(axis, from int) bool
	rec = func(axis, from int) bool {
		if axis == dims {
			return p.NodeAllowed(lcl.NewMultiset(labels...))
		}
		// Combinations with repetition: the node multiset is order-
		// insensitive across axes.
		for i := from; i < len(loops); i++ {
			labels = append(labels, loops[i][0], loops[i][1])
			chosen = append(chosen, loops[i])
			if rec(axis+1, i) {
				return true
			}
			labels = labels[:len(labels)-2]
			chosen = chosen[:len(chosen)-1]
		}
		return false
	}
	if !rec(0, 0) {
		return false, ""
	}
	parts := make([]string, len(chosen))
	for j, pr := range chosen {
		parts[j] = "(" + p.OutNames[pr[0]] + "," + p.OutNames[pr[1]] + ")"
	}
	return true, strings.Join(parts, " ")
}

// intPow returns base^exp, or -1 on overflow past combinationBudget.
func intPow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
		if out < 0 || out > combinationBudget {
			return -1
		}
	}
	return out
}
