// The PROD-LOCAL model (Definition 5.2): every node holds one
// identifier per dimension (equal iff the nodes share that coordinate),
// the LOCAL→PROD-LOCAL simulation of Proposition 5.3, and the
// complexity-class witnesses for the Figure 1 (top right) landscape:
// O(1) (direction labeling), Θ(log* n) (per-dimension Cole–Vishkin
// coloring), and Θ(d√n) (line-global 2-coloring).

package grid

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// NodeInfo is what a PROD-LOCAL node knows at round 0: the total node
// count, the side lengths, its per-dimension identifiers (Definition 5.2),
// its degree, and the dimension/direction label of each port (2k = +k,
// 2k+1 = -k; the consistent orientation of Section 5).
type NodeInfo struct {
	N      int
	Sides  []int
	DimIDs []int
	Deg    int
	Dim    []int
}

// Machine is a synchronous PROD-LOCAL algorithm (state exchange each
// round, as in package local).
type Machine interface {
	Name() string
	Init(info *NodeInfo) any
	Step(info *NodeInfo, state any, inbox []any) (any, bool)
	Output(info *NodeInfo, state any) []int
}

// Result of a PROD-LOCAL run.
type Result struct {
	Output []int
	Rounds int
}

// IDAssignment holds per-dimension coordinate identifiers: IDs[k][c] is
// the identifier shared by all nodes whose k-th coordinate is c.
type IDAssignment [][]int

// RandomDimIDs draws strictly distinct per-coordinate identifiers from a
// polynomial range, independently per dimension.
func RandomDimIDs(sides []int, rng *rand.Rand) IDAssignment {
	out := make(IDAssignment, len(sides))
	for k, s := range sides {
		seen := map[int]bool{}
		out[k] = make([]int, s)
		for c := 0; c < s; c++ {
			for {
				x := 1 + rng.Intn(s*s*s+7)
				if !seen[x] {
					seen[x] = true
					out[k][c] = x
					break
				}
			}
		}
	}
	return out
}

// SequentialDimIDs assigns identifier c+1 to coordinate c — the "order
// from orientation" the end of Section 5 exploits (Proposition 5.5: the
// oriented grid induces a local order for free).
func SequentialDimIDs(sides []int) IDAssignment {
	out := make(IDAssignment, len(sides))
	for k, s := range sides {
		out[k] = make([]int, s)
		for c := 0; c < s; c++ {
			out[k][c] = c + 1
		}
	}
	return out
}

// Run executes the machine on an oriented torus (from graph.Torus with the
// same sides).
func Run(g *graph.Graph, sides []int, ids IDAssignment, m Machine, maxRounds int) (*Result, error) {
	n := g.N()
	if maxRounds == 0 {
		maxRounds = 8*n + 1024
	}
	infos := make([]*NodeInfo, n)
	states := make([]any, n)
	done := make([]bool, n)
	for v := 0; v < n; v++ {
		coord := graph.TorusCoord(v, sides)
		dimIDs := make([]int, len(sides))
		for k := range sides {
			dimIDs[k] = ids[k][coord[k]]
		}
		info := &NodeInfo{N: n, Sides: sides, DimIDs: dimIDs, Deg: g.Deg(v)}
		info.Dim = make([]int, g.Deg(v))
		for p := 0; p < g.Deg(v); p++ {
			info.Dim[p] = g.DimLabel(v, p)
		}
		infos[v] = info
		states[v] = m.Init(info)
	}
	rounds := 0
	for r := 0; r < maxRounds; r++ {
		allDone := true
		for v := 0; v < n && allDone; v++ {
			allDone = done[v]
		}
		if allDone {
			break
		}
		rounds++
		next := make([]any, n)
		for v := 0; v < n; v++ {
			if done[v] {
				next[v] = states[v]
				continue
			}
			inbox := make([]any, g.Deg(v))
			for p, ep := range g.Ports(v) {
				inbox[p] = states[ep.To]
			}
			st, fin := m.Step(infos[v], states[v], inbox)
			next[v] = st
			done[v] = fin
		}
		states = next
	}
	for v := 0; v < n; v++ {
		if !done[v] {
			return nil, fmt.Errorf("grid: %s did not terminate within %d rounds", m.Name(), maxRounds)
		}
	}
	out := make([]int, g.NumHalfEdges())
	for v := 0; v < n; v++ {
		lab := m.Output(infos[v], states[v])
		if len(lab) != g.Deg(v) {
			return nil, fmt.Errorf("grid: %s output arity mismatch at node %d", m.Name(), v)
		}
		for p, o := range lab {
			out[g.HalfEdge(v, p)] = o
		}
	}
	return &Result{Output: out, Rounds: rounds}, nil
}

// CombinedIDs realizes Proposition 5.3: globally unique single identifiers
// I(u) = Σ_k id_k(u) · M^k from the per-dimension identifiers (M bounds
// the per-dimension ID range), enabling any LOCAL algorithm to run in the
// PROD-LOCAL model with the same round complexity.
func CombinedIDs(g *graph.Graph, sides []int, ids IDAssignment) []int {
	m := 2
	for _, dim := range ids {
		for _, x := range dim {
			if x+1 > m {
				m = x + 1
			}
		}
	}
	out := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		coord := graph.TorusCoord(v, sides)
		id, stride := 0, 1
		for k := range sides {
			id += ids[k][coord[k]] * stride
			stride *= m
		}
		out[v] = id
	}
	return out
}
