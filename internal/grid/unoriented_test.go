package grid

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/local"
)

func TestStripOrientationRemovesDimLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Torus(8, 8)
	if !HasOrientation(g) {
		t.Fatal("oriented torus should carry dimension labels")
	}
	u := StripOrientation(g, rng)
	if HasOrientation(u) {
		t.Fatal("stripped torus still carries dimension labels")
	}
	if u.N() != g.N() {
		t.Fatalf("node count changed: %d vs %d", u.N(), g.N())
	}
	for v := 0; v < u.N(); v++ {
		if u.Deg(v) != g.Deg(v) {
			t.Fatalf("degree of %d changed: %d vs %d", v, u.Deg(v), g.Deg(v))
		}
	}
}

func TestStripOrientationPreservesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.Torus(4, 4)
	u := StripOrientation(g, rng)
	adj := func(h *graph.Graph) map[[2]int]int {
		m := map[[2]int]int{}
		h.Edges(func(a, _, b, _ int) {
			if a > b {
				a, b = b, a
			}
			m[[2]int{a, b}]++
		})
		return m
	}
	ga, ua := adj(g), adj(u)
	if len(ga) != len(ua) {
		t.Fatalf("edge multiset size changed: %d vs %d", len(ga), len(ua))
	}
	for e, c := range ga {
		if ua[e] != c {
			t.Fatalf("edge %v multiplicity changed: %d vs %d", e, c, ua[e])
		}
	}
}

// TestUnorientedTorusStillColorsWithIDs is the class-B side of
// Conjecture 1.6: ID-driven Linial coloring never needed the orientation,
// so it keeps working (and keeps its Θ(log* n) locality) on the stripped
// torus — only the O(1) *orientation-consuming* algorithms lose their
// inputs.
func TestUnorientedTorusStillColorsWithIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := StripOrientation(graph.Torus(8, 8), rng)
	m := local.NewColoring(4)
	res, err := local.Run(g, m, local.RunOpts{IDs: local.RandomIDs(g.N(), rng)})
	if err != nil {
		t.Fatal(err)
	}
	color := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		color[v] = res.Output[g.HalfEdge(v, 0)]
	}
	bad := false
	g.Edges(func(a, _, b, _ int) {
		if color[a] == color[b] {
			bad = true
		}
	})
	if bad {
		t.Fatal("coloring on the unoriented torus is improper")
	}
}

func TestOrientedMachineInputsGoneAfterStrip(t *testing.T) {
	// DirectionMachine's entire output is the dimension label of each
	// half-edge; on a stripped torus those labels read -1 — there is
	// nothing for Proposition 5.5's implicit order to latch onto.
	rng := rand.New(rand.NewSource(4))
	u := StripOrientation(graph.Torus(4, 4), rng)
	for v := 0; v < u.N(); v++ {
		for p := 0; p < u.Deg(v); p++ {
			if u.DimLabel(v, p) != -1 {
				t.Fatalf("half-edge (%d,%d) still labeled %d", v, p, u.DimLabel(v, p))
			}
		}
	}
}
