package grid

import (
	"fmt"

	"repro/internal/lcl"
	"repro/internal/reduction"
)

// Complexity-class witnesses for the oriented-grid landscape (Figure 1,
// top right, completed by Theorem 1.4): O(1), Θ(log* n), Θ(d√n).

// GridColoring computes a proper vertex coloring of the oriented torus
// with palette 6^d in Θ(log* n) rounds: Cole–Vishkin along each
// dimension's oriented line (orientation is given — this is exactly where
// Section 5's consistent edge orientation pays off), then the per-dim
// colors are combined. Adjacent nodes differ in exactly one dimension's
// line, whose CV color differs.
type GridColoring struct{ D int }

// Name implements Machine.
func (gc GridColoring) Name() string { return fmt.Sprintf("grid-%dd-coloring", gc.D) }

type gridColorState struct {
	colors []int // per-dimension CV colors
	round  int
	total  int
}

// Init implements Machine.
func (gc GridColoring) Init(info *NodeInfo) any {
	st := gridColorState{colors: append([]int(nil), info.DimIDs...)}
	// Rounds to reduce the per-dimension ID palette to 6 colors.
	maxSide := 0
	for _, s := range info.Sides {
		if s > maxSide {
			maxSide = s
		}
	}
	st.total = reduction.CVRounds(maxSide*maxSide*maxSide + 8)
	return st
}

// Step implements Machine: one CV step per dimension per round, using the
// +direction neighbor (port labeled 2k) as the chain successor.
func (gc GridColoring) Step(info *NodeInfo, state any, inbox []any) (any, bool) {
	st := state.(gridColorState)
	if st.round >= st.total {
		return st, true
	}
	next := append([]int(nil), st.colors...)
	for k := 0; k < gc.D; k++ {
		succ := -1
		for p, lab := range info.Dim {
			if lab == 2*k {
				succ = p
				break
			}
		}
		if succ < 0 {
			return st, true // not a torus node; bail out
		}
		succColors := inbox[succ].(gridColorState).colors
		if succColors[k] != st.colors[k] {
			next[k] = reduction.CVStep(st.colors[k], succColors[k])
		}
	}
	st.colors = next
	st.round++
	return st, st.round >= st.total
}

// Output implements Machine: combined color Σ c_k · 6^k on every port.
func (gc GridColoring) Output(info *NodeInfo, state any) []int {
	st := state.(gridColorState)
	c, stride := 0, 1
	for k := 0; k < gc.D; k++ {
		c += st.colors[k] * stride
		stride *= 6
	}
	out := make([]int, info.Deg)
	for p := range out {
		out[p] = c
	}
	return out
}

// GridColoringProblem is the LCL GridColoring solves: proper 6^d-coloring
// on 2d-regular graphs.
func GridColoringProblem(d int) *lcl.Problem {
	palette := 1
	for i := 0; i < d; i++ {
		palette *= 6
	}
	names := make([]string, palette)
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
	}
	b := lcl.NewBuilder(fmt.Sprintf("grid-%dd-coloring", d), nil, names)
	deg := 2 * d
	for c := 0; c < palette; c++ {
		cfg := make([]string, deg)
		for i := range cfg {
			cfg[i] = names[c]
		}
		b.Node(cfg...)
	}
	for a := 0; a < palette; a++ {
		for c := a + 1; c < palette; c++ {
			b.Edge(names[a], names[c])
		}
	}
	return b.MustBuild()
}

// DirectionMachine solves the direction-labeling problem in 0 rounds: each
// half-edge outputs its own dimension/direction label — the canonical O(1)
// problem on oriented grids (the orientation is part of the input, so
// "recover the orientation" is constant-time).
type DirectionMachine struct{}

// Name implements Machine.
func (DirectionMachine) Name() string { return "grid-direction" }

// Init implements Machine.
func (DirectionMachine) Init(info *NodeInfo) any { return nil }

// Step implements Machine.
func (DirectionMachine) Step(info *NodeInfo, state any, inbox []any) (any, bool) {
	return nil, true
}

// Output implements Machine.
func (DirectionMachine) Output(info *NodeInfo, state any) []int {
	return append([]int(nil), info.Dim...)
}

// DirectionProblem is the LCL DirectionMachine solves: every node of
// degree 2d carries one half-edge per direction class, and each edge pairs
// direction 2k with 2k+1.
func DirectionProblem(d int) *lcl.Problem {
	names := make([]string, 2*d)
	for i := range names {
		names[i] = fmt.Sprintf("dir%d", i)
	}
	b := lcl.NewBuilder(fmt.Sprintf("grid-%dd-direction", d), nil, names)
	b.Node(names...)
	for k := 0; k < d; k++ {
		b.Edge(names[2*k], names[2*k+1])
	}
	return b.MustBuild()
}

// Dim0TwoColoring solves "proper 2-coloring along dimension 0" (side must
// be even): each node learns the minimum dim-0 identifier on its line by
// flooding s0 rounds along dimension 0, then outputs the parity of its
// distance from that leader on its dim-0 half-edges and a neutral label on
// all others. Θ(s) = Θ(d√n) rounds — the global witness.
type Dim0TwoColoring struct{}

// Name implements Machine.
func (Dim0TwoColoring) Name() string { return "grid-dim0-2coloring" }

type dim0State struct {
	minID  int
	parity int
	round  int
}

// Init implements Machine.
func (Dim0TwoColoring) Init(info *NodeInfo) any {
	return dim0State{minID: info.DimIDs[0]}
}

// Step implements Machine.
func (Dim0TwoColoring) Step(info *NodeInfo, state any, inbox []any) (any, bool) {
	st := state.(dim0State)
	for p, lab := range info.Dim {
		if lab != 0 && lab != 1 {
			continue // only flood along dimension 0
		}
		ns := inbox[p].(dim0State)
		if ns.minID < st.minID {
			st.minID = ns.minID
			st.parity = 1 - ns.parity
		}
	}
	st.round++
	return st, st.round >= info.Sides[0]
}

// Output implements Machine: label 0/1 (parity) on dim-0 ports, label 2
// (neutral) elsewhere.
func (Dim0TwoColoring) Output(info *NodeInfo, state any) []int {
	st := state.(dim0State)
	out := make([]int, info.Deg)
	for p, lab := range info.Dim {
		if lab == 0 || lab == 1 {
			out[p] = st.parity
		} else {
			out[p] = 2
		}
	}
	return out
}

// Dim0Problem is the node-edge-checkable LCL for Dim0TwoColoring, with the
// direction labels supplied as INPUT labels (inputs make the problem
// expressible in the Definition 2.3 format, whose edge constraint cannot
// otherwise depend on the dimension): output c0/c1 allowed only on dim-0
// half-edges (inputs "0"/"1"), neutral x only on the others; a node colors
// both its dim-0 ports alike; dim-0 edges must bichromatic, others pair x
// with x.
func Dim0Problem(d int) *lcl.Problem {
	inNames := make([]string, 2*d)
	for i := range inNames {
		inNames[i] = fmt.Sprintf("dir%d", i)
	}
	b := lcl.NewBuilder(fmt.Sprintf("grid-%dd-dim0-2coloring", d), inNames, []string{"c0", "c1", "x"})
	deg := 2 * d
	for c := 0; c < 2; c++ {
		cfg := make([]string, deg)
		cfg[0] = fmt.Sprintf("c%d", c)
		cfg[1] = fmt.Sprintf("c%d", c)
		for i := 2; i < deg; i++ {
			cfg[i] = "x"
		}
		b.Node(cfg...)
	}
	b.Edge("c0", "c1")
	b.Edge("x", "x")
	b.Allow("dir0", "c0", "c1")
	b.Allow("dir1", "c0", "c1")
	for i := 2; i < 2*d; i++ {
		b.Allow(inNames[i], "x")
	}
	return b.MustBuild()
}

// DirectionInputs derives the input labeling for Dim0Problem from the
// grid's dimension labels.
func DirectionInputs(gDeg func(v int) int, dimLabel func(v, p int) int, halfEdge func(v, p int) int, n, numHalfEdges int) []int {
	in := make([]int, numHalfEdges)
	for v := 0; v < n; v++ {
		for p := 0; p < gDeg(v); p++ {
			in[halfEdge(v, p)] = dimLabel(v, p)
		}
	}
	return in
}
