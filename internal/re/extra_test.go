package re

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/problems"
)

func TestGapPipelineFreeOrientationDelta3(t *testing.T) {
	p := problems.FreeOrientation(3)
	res, err := RunGapPipeline(p, []int{1, 2, 3}, Pruned, Limits{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictConstant {
		t.Fatalf("free orientation(3): %v", res.Verdict)
	}
	if res.Level < 1 {
		t.Fatalf("free orientation should not be 0-round solvable, got level %d", res.Level)
	}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 3; trial++ {
		g := graph.RandomTree(25, 3, rng)
		fout, err := res.SolveConstant(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Solves(g, nil, fout) {
			t.Error("lifted free orientation invalid")
		}
	}
}

func TestGapPipelineBoundedIndependence(t *testing.T) {
	p := problems.BoundedIndependence(3)
	res, err := RunGapPipeline(p, []int{1, 2, 3}, Pruned, Limits{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictConstant || res.Level != 0 {
		t.Fatalf("bounded independence: %v at level %d", res.Verdict, res.Level)
	}
}

func TestGapPipelineAtMostOneIncomingNotConstant(t *testing.T) {
	// In-degree <= 1 orientation needs symmetry breaking at the very
	// least; the pipeline must not certify O(1) at shallow levels — and if
	// it ever did, SolveConstant's verification in the other tests would
	// catch an unsound lift.
	p := problems.AtMostOneIncoming(2)
	res, err := RunGapPipeline(p, []int{1, 2}, Pruned, Limits{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict == VerdictConstant {
		// If this fires, verify the claim before rejecting it: run the
		// constant solver on a path and a cycle-free forest.
		rng := rand.New(rand.NewSource(43))
		g := graph.RandomForest(30, 3, 2, rng)
		fout, err := res.SolveConstant(g, nil)
		if err != nil || !p.Solves(g, nil, fout) {
			t.Fatalf("pipeline claimed O(1) but the witness fails: %v", err)
		}
		// A verified O(1) on forests would be a (surprising) discovery;
		// flag it for inspection rather than asserting it away.
		t.Logf("note: at-most-one-incoming verified O(1) on forests at level %d", res.Level)
	}
}

func TestEdgeColoringREStructure(t *testing.T) {
	// R on proper edge coloring: the edge constraint is "both sides
	// equal", whose compatibility rows are singletons; the closure family
	// is the singletons, so R(Π) has exactly k labels.
	p := problems.EdgeColoring(3, 2)
	r, err := Apply(p, OpR, Pruned, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Prob.NumOut() != 3 {
		t.Errorf("R(3-edge-coloring) has %d labels, want 3", r.Prob.NumOut())
	}
}

func TestIsomorphicBudgetTerminates(t *testing.T) {
	// Two highly symmetric problems (many interchangeable labels): the
	// budgeted search must return quickly either way.
	a := problems.Coloring(8, 2)
	b := problems.Coloring(8, 2)
	if !Isomorphic(a, b) {
		t.Error("identical 8-colorings not isomorphic")
	}
	c := problems.EdgeColoring(8, 2)
	if Isomorphic(a, c) {
		t.Error("vertex and edge coloring confused")
	}
}

func TestTwoColoringSequenceGrowsLinearly(t *testing.T) {
	// Round elimination on 2-coloring generates the "distance-k" problem
	// sequence: each f = R̄∘R level adds exactly one label (pruned mode)
	// and the sequence never becomes 0-round solvable nor cycles —
	// consistent with its Θ(n) complexity. Pin the growth pattern.
	seq := NewSequence(problems.Coloring(2, 2), Pruned, Limits{})
	for level := 1; level <= 3; level++ {
		if err := seq.Extend(); err != nil {
			t.Fatal(err)
		}
		rLabels := seq.Steps[2*level-2].Prob.NumOut()
		rrLabels := seq.Steps[2*level-1].Prob.NumOut()
		if rLabels != 2*level || rrLabels != 2*level+1 {
			t.Fatalf("level %d: R has %d labels (want %d), R̄ has %d (want %d)",
				level, rLabels, 2*level, rrLabels, 2*level+1)
		}
		if _, ok := ZeroRoundSolvable(seq.ProblemAt(level), []int{1, 2}); ok {
			t.Fatalf("2-coloring became 0-round solvable at level %d", level)
		}
	}
}
