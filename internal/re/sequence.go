package re

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/lcl"
)

// Sequence is the iterated round elimination sequence
// Π, R(Π), R̄(R(Π)), R(R̄(R(Π))), ... of Section 3.4, where
// f(Π) = R̄(R(Π)) is applied repeatedly.
type Sequence struct {
	Base  *lcl.Problem
	Steps []*Step // alternating OpR, OpRBar, OpR, ...
	Mode  Mode
	Lim   Limits
}

// NewSequence starts a sequence at base.
func NewSequence(base *lcl.Problem, mode Mode, lim Limits) *Sequence {
	return &Sequence{Base: base, Mode: mode, Lim: lim}
}

// Levels returns how many f = R̄∘R applications are complete.
func (s *Sequence) Levels() int { return len(s.Steps) / 2 }

// ProblemAt returns f^t(Π): t=0 is the base problem.
func (s *Sequence) ProblemAt(t int) *lcl.Problem {
	if t == 0 {
		return s.Base
	}
	return s.Steps[2*t-1].Prob
}

// Extend applies f = R̄∘R once more.
func (s *Sequence) Extend() error {
	cur := s.Base
	if len(s.Steps) > 0 {
		cur = s.Steps[len(s.Steps)-1].Prob
	}
	r, err := Apply(cur, OpR, s.Mode, s.Lim)
	if err != nil {
		return fmt.Errorf("re: extending with R at level %d: %w", s.Levels(), err)
	}
	rr, err := Apply(r.Prob, OpRBar, s.Mode, s.Lim)
	if err != nil {
		return fmt.Errorf("re: extending with R̄ at level %d: %w", s.Levels(), err)
	}
	s.Steps = append(s.Steps, r, rr)
	return nil
}

// Verdict classifies the outcome of the gap pipeline.
type Verdict int

// Pipeline outcomes.
const (
	// VerdictConstant: f^t(Π) became 0-round solvable, so Π is solvable in
	// O(1) rounds (Theorem 3.10's reconstruction via Lemma 3.9).
	VerdictConstant Verdict = iota
	// VerdictCycle: the sequence revisited an isomorphic problem without
	// ever being 0-round solvable, so it never will be — certifying that
	// Π is NOT o(log* n) on forests (contrapositive of Theorem 3.10).
	VerdictCycle
	// VerdictInconclusive: the iteration budget or size limits ran out.
	VerdictInconclusive
)

func (v Verdict) String() string {
	switch v {
	case VerdictConstant:
		return "O(1)"
	case VerdictCycle:
		return "Ω(log* n) [RE cycle]"
	default:
		return "inconclusive"
	}
}

// GapResult reports a run of the tree-gap pipeline on one problem.
type GapResult struct {
	Verdict Verdict
	// Level t such that f^t(Π) is 0-round solvable (VerdictConstant), or
	// at which the isomorphic repeat was found (VerdictCycle).
	Level   int
	Witness *ZeroRound // for VerdictConstant
	Seq     *Sequence
	// CycleWith is the earlier level the repeat is isomorphic to
	// (VerdictCycle).
	CycleWith int
	// Reason explains an inconclusive verdict (e.g. alphabet growth past
	// the representable cap).
	Reason string
}

// RunGapPipeline iterates f = R̄∘R up to maxLevels times, checking 0-round
// solvability (over the given degree set) after each application, and
// detecting cycles up to label renaming. This is the executable form of
// the Section 3.4 argument: a problem with complexity o(log* n) must
// become 0-round solvable after finitely many applications (with the
// failure-probability bookkeeping of Theorem 3.4 guaranteeing the
// randomized chain survives), and conversely Lemma 3.9 rebuilds a
// constant-round algorithm from the 0-round witness.
func RunGapPipeline(base *lcl.Problem, degrees []int, mode Mode, lim Limits, maxLevels int) (*GapResult, error) {
	seq := NewSequence(base, mode, lim)
	canon := []string{Canonical(base)}
	if w, ok := ZeroRoundSolvable(base, degrees); ok {
		return &GapResult{Verdict: VerdictConstant, Level: 0, Witness: w, Seq: seq}, nil
	}
	for t := 1; t <= maxLevels; t++ {
		if err := seq.Extend(); err != nil {
			// Alphabet growth beyond the representable cap is the expected
			// behaviour of real round elimination on Θ(log* n)-hard
			// problems (e.g. coloring): report inconclusive, carrying the
			// reason, rather than failing the pipeline.
			return &GapResult{Verdict: VerdictInconclusive, Level: t - 1, Seq: seq, Reason: err.Error()}, nil
		}
		cur := seq.ProblemAt(t)
		if w, ok := ZeroRoundSolvable(cur, degrees); ok {
			return &GapResult{Verdict: VerdictConstant, Level: t, Witness: w, Seq: seq}, nil
		}
		c := Canonical(cur)
		for earlier, ec := range canon {
			if ec == c && Isomorphic(seq.ProblemAt(earlier), cur) {
				return &GapResult{Verdict: VerdictCycle, Level: t, CycleWith: earlier, Seq: seq}, nil
			}
		}
		canon = append(canon, c)
	}
	return &GapResult{Verdict: VerdictInconclusive, Level: maxLevels, Seq: seq}, nil
}

// SolveConstant runs the reconstructed constant-round algorithm end to
// end: the 0-round witness labels f^t(Π) on (g, fin), then Lemma 3.9 lifts
// the solution down t levels to a solution of Π. This is the executable
// statement of Theorem 3.10.
func (r *GapResult) SolveConstant(g *graph.Graph, fin []int) ([]int, error) {
	if r.Verdict != VerdictConstant {
		return nil, fmt.Errorf("re: SolveConstant on verdict %v", r.Verdict)
	}
	fout, err := r.Witness.Run(g, fin)
	if err != nil {
		return nil, err
	}
	for t := r.Level; t >= 1; t-- {
		q := r.Seq.ProblemAt(t - 1)
		rStep := r.Seq.Steps[2*t-2]
		rrStep := r.Seq.Steps[2*t-1]
		fout, err = LiftOnce(q, rStep, rrStep, g, fin, nil, fout)
		if err != nil {
			return nil, fmt.Errorf("re: lift at level %d: %w", t, err)
		}
	}
	return fout, nil
}
