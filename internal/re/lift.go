package re

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/lcl"
)

// LiftOnce implements Lemma 3.9 executably: given a correct solution of
// R̄(R(Q)) on (g, fin), it constructs a correct solution of Q. In the LOCAL
// model this costs one extra round (each node inspects its neighbors'
// R̄(R(Q))-outputs); here the transformation runs on materialized
// labelings.
//
// rStep must be the Step producing R(Q) from Q, and rrStep the Step
// producing R̄(R(Q)) from R(Q). ids provides the tie-breaking order the
// lemma's "deterministic fashion" requires (both endpoints of an edge must
// agree on which of the two chosen R(Q)-labels belongs to which side); any
// injective assignment works, node indices by default.
func LiftOnce(q *lcl.Problem, rStep, rrStep *Step, g *graph.Graph, fin []int, ids []int, foutRR []int) ([]int, error) {
	if ids == nil {
		ids = make([]int, g.N())
		for i := range ids {
			ids[i] = i
		}
	}
	// Step 1 (first half of the lemma): per edge, pick
	// (L_{v,e}, L_{w,e}) ∈ Λ(v,e) × Λ(w,e) with {L_v, L_w} ∈ E_{R(Q)},
	// deterministically: lexicographically first over (label at the
	// smaller-ID endpoint, label at the larger-ID endpoint).
	rLabels := make([]int, g.NumHalfEdges()) // R(Q) labels per half-edge
	for i := range rLabels {
		rLabels[i] = -1
	}
	var liftErr error
	g.Edges(func(u, pu, v, pv int) {
		if liftErr != nil {
			return
		}
		hu, hv := g.HalfEdge(u, pu), g.HalfEdge(v, pv)
		mu := rrStep.Meaning[foutRR[hu]]
		mv := rrStep.Meaning[foutRR[hv]]
		a, b := hu, hv
		ma, mb := mu, mv
		if ids[v] < ids[u] {
			a, b, ma, mb = hv, hu, mv, mu
		}
		found := false
		for _, la := range ma.Members() {
			for _, lb := range mb.Members() {
				if rStep.Prob.EdgeAllowed(la, lb) {
					rLabels[a], rLabels[b] = la, lb
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			liftErr = fmt.Errorf("re: lift step 1 found no E_{R(Q)} pair on edge {%d,%d} (input not a valid R̄R solution?)", u, v)
		}
	})
	if liftErr != nil {
		return nil, liftErr
	}
	// Step 2: per node, pick ℓ_{v,e} ∈ meaning(L_{v,e}) with the multiset
	// in N_Q^{deg(v)}; lexicographically first. g_Q holds automatically
	// because meanings of labels allowed under g_{R(Q)}(in) are subsets of
	// g_Q(in), but we restrict the search anyway for robustness.
	out := make([]int, g.NumHalfEdges())
	for v := 0; v < g.N(); v++ {
		d := g.Deg(v)
		choices := make([][]int, d)
		for p := 0; p < d; p++ {
			m := rStep.Meaning[rLabels[g.HalfEdge(v, p)]]
			in := lcl.NoInput
			if fin != nil {
				in = fin[g.HalfEdge(v, p)]
			}
			for _, l := range m.Members() {
				if q.GAllowed(in, l) {
					choices[p] = append(choices[p], l)
				}
			}
			if len(choices[p]) == 0 {
				return nil, fmt.Errorf("re: lift step 2: empty g-filtered meaning at node %d port %d", v, p)
			}
		}
		pick := make([]int, d)
		if !chooseNodeConfig(q, choices, pick, 0) {
			return nil, fmt.Errorf("re: lift step 2 found no N_Q configuration at node %d (input not a valid R̄R solution?)", v)
		}
		for p, l := range pick {
			out[g.HalfEdge(v, p)] = l
		}
	}
	return out, nil
}

func chooseNodeConfig(q *lcl.Problem, choices [][]int, pick []int, i int) bool {
	if i == len(choices) {
		return q.NodeAllowed(lcl.NewMultiset(append([]int(nil), pick...)...))
	}
	for _, l := range choices[i] {
		pick[i] = l
		if chooseNodeConfig(q, choices, pick, i+1) {
			return true
		}
	}
	return false
}
