package re

import (
	"math"
)

// Failure-probability bookkeeping of Theorem 3.4: if A solves Π with local
// failure probability p in T rounds, then A' solves R̄(R(Π)) in T-1 rounds
// with local failure probability at most S·p^{1/(3Δ+3)}, where
//
//	S = (10Δ(|Σin| + max(|Σout|, |Σ^{R(Π)}out|)))^{4Δ^{T+1}}.
//
// We track the bound in log₂ space to survive the tower-sized exponents of
// Section 3.4, and expose the iterated bound used in the proof of
// Theorem 3.10.

// FailureBound describes a local failure probability bound in log2 space:
// the bound is 2^Log2P (clamped to [0,1] by convention Log2P <= 0 means a
// real probability, > 0 means the bound is vacuous).
type FailureBound struct {
	Log2P float64
}

// Vacuous reports whether the bound exceeds 1 (no information).
func (f FailureBound) Vacuous() bool { return f.Log2P >= 0 }

// Value returns min(1, 2^Log2P).
func (f FailureBound) Value() float64 {
	if f.Vacuous() {
		return 1
	}
	return math.Exp2(f.Log2P)
}

// Theorem34Params carries the quantities the Theorem 3.4 step depends on.
type Theorem34Params struct {
	Delta     int // maximum degree Δ
	SigmaIn   int // |Σin| (constant along the sequence)
	SigmaOut  int // |Σout| of the current problem Π
	SigmaROut int // |Σ^{R(Π)}out|
	T         int // runtime of the current algorithm A
}

// Log2S returns log2 of S = (10Δ(|Σin| + max(|ΣΠout|, |Σ^{R(Π)}out|)))^{4Δ^{T+1}}.
func Log2S(p Theorem34Params) float64 {
	m := p.SigmaOut
	if p.SigmaROut > m {
		m = p.SigmaROut
	}
	base := float64(10*p.Delta) * float64(p.SigmaIn+m)
	exp := 4 * math.Pow(float64(p.Delta), float64(p.T+1))
	return exp * math.Log2(base)
}

// Step34 applies one Theorem 3.4 step: p -> S * p^{1/(3Δ+3)} in log space.
func Step34(bound FailureBound, p Theorem34Params) FailureBound {
	return FailureBound{Log2P: Log2S(p) + bound.Log2P/float64(3*p.Delta+3)}
}

// IterateBound34 tracks the bound across T applications of Theorem 3.4
// starting from local failure probability p0 = 1/n (the randomized LOCAL
// guarantee of Definition 2.5), using pessimistic per-step alphabet sizes
// sigmaMax (e.g. the log n₀ cap established by (3.5) in the proof of
// Theorem 3.10). It returns the bound after each step.
func IterateBound34(n float64, delta, sigmaIn, sigmaMax, T int) []FailureBound {
	bounds := make([]FailureBound, 0, T+1)
	cur := FailureBound{Log2P: -math.Log2(n)}
	bounds = append(bounds, cur)
	for t := 0; t < T; t++ {
		cur = Step34(cur, Theorem34Params{
			Delta: delta, SigmaIn: sigmaIn,
			SigmaOut: sigmaMax, SigmaROut: sigmaMax,
			T: T - t,
		})
		bounds = append(bounds, cur)
	}
	return bounds
}

// MinTowerHeightForGap returns the smallest tower height h such that
// n0 = Tower(h) satisfies the three requirements (3.2)–(3.4) in the proof
// of Theorem 3.10 for a constant runtime T (the relevant case: after the
// gap argument the runtime is the constant T(n0)):
//
//	(3.2) T + 2 <= log_Δ n0            — trivial once h >= 3,
//	(3.3) 2T + 5 <= log* n0 = h,
//	(3.4) (S*)² · n0^{-1/(3Δ+3)^T} < 1/(log n0)^{2Δ}
//	      with S* = (10Δ(σin + log n0))^{4Δ^{T+1}}.
//
// n0 is tower-sized (this is why the paper fixes n0 rather than letting n
// vary), so the check runs in log-log space: writing L1 = log2 n0 =
// Tower(h-1) and L2 = log2 L1 = Tower(h-2), (3.4) in log2 form is
//
//	L1/(3Δ+3)^T > 8Δ^{T+1}·(log2(10Δ) + L2 + 1) + 2Δ·L2,
//
// i.e. 2^{L2} dominates a linear function of L2, which is decided exactly
// for representable L2 and is automatically true for h - 2 >= 5.
func MinTowerHeightForGap(T, delta, sigmaIn int) int {
	h := 2*T + 5
	if h < 3 {
		h = 3
	}
	for ; h < 64; h++ {
		if gapCondition34(h, T, delta, sigmaIn) {
			return h
		}
	}
	return -1
}

func gapCondition34(h, T, delta, sigmaIn int) bool {
	if h-2 >= 5 {
		// L2 = Tower(h-2) >= 2^65536: the exponential side dominates any
		// constant-coefficient linear function of L2 arising from (3.4).
		return true
	}
	l2 := tOWER(h - 2)
	c1 := math.Pow(float64(3*delta+3), float64(T))
	rhs := 8*math.Pow(float64(delta), float64(T+1))*(math.Log2(float64(10*delta))+l2+float64(sigmaIn)) + 2*float64(delta)*l2
	// Condition: 2^{L2} / c1 > rhs, i.e. L2 > log2(c1 * rhs).
	return l2 > math.Log2(c1*rhs)
}

// tOWER is Tower as float for heights 0..4.
func tOWER(h int) float64 {
	v := 1.0
	for i := 0; i < h; i++ {
		v = math.Exp2(v)
	}
	return v
}
