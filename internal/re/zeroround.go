package re

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/lcl"
)

// This file implements the deterministic 0-round solvability decision from
// the proof of Theorem 3.10: a 0-round deterministic algorithm A_det is a
// function from a node's (degree, input tuple) to an output tuple, and it
// is correct on all forests iff
//
//  1. for every degree d in play and every input tuple, the chosen output
//     tuple satisfies the node constraint and g, and
//  2. the set of output labels used anywhere is "self-compatible": every
//     unordered pair (including twice the same label) is an allowed edge
//     configuration — because in a forest, any port of any node type can
//     be adjacent to any port of any (equal or different) node type.
//
// Condition 2 is monotone in the used-label set, so it suffices to test
// maximal self-compatible cliques of the edge-compatibility graph.

// ZeroRound is a deterministic 0-round algorithm: a witness for
// ZeroRoundSolvable. Outputs are assigned per port, depending only on the
// node's degree and per-port input labels.
type ZeroRound struct {
	Prob    *lcl.Problem
	Clique  []int // self-compatible output labels the algorithm draws from
	Degrees []int
}

// ZeroRoundSolvable decides whether prob admits a deterministic 0-round
// algorithm on forests whose node degrees range over degrees, and returns
// a witness if so.
func ZeroRoundSolvable(prob *lcl.Problem, degrees []int) (*ZeroRound, bool) {
	var selfOK []int
	for o := 0; o < prob.NumOut(); o++ {
		if prob.EdgeAllowed(o, o) {
			selfOK = append(selfOK, o)
		}
	}
	if len(selfOK) == 0 {
		return nil, false
	}
	var witness *ZeroRound
	tested := 0
	maximalCliques(prob, selfOK, func(clique []int) bool {
		tested++
		if tested > maxCliquesTested {
			return false // give up: report not-0-round (the safe direction)
		}
		if cliqueSupportsAllTypes(prob, clique, degrees) {
			c := append([]int(nil), clique...)
			sort.Ints(c)
			witness = &ZeroRound{Prob: prob, Clique: c, Degrees: degrees}
			return false
		}
		return true
	})
	return witness, witness != nil
}

// maxCliquesTested caps the maximal-clique enumeration; RE-generated
// problems with dense compatibility can have exponentially many maximal
// cliques. Giving up reports "not 0-round solvable", which can only make
// the pipeline inconclusive, never unsound.
const maxCliquesTested = 100_000

// maximalCliques enumerates maximal cliques of the edge-compatibility
// graph restricted to self-compatible labels (Bron–Kerbosch without
// pivoting; alphabets are small), invoking fn for each; enumeration stops
// when fn returns false.
func maximalCliques(prob *lcl.Problem, verts []int, fn func([]int) bool) {
	adj := func(a, b int) bool { return prob.EdgeAllowed(a, b) }
	stopped := false
	var bk func(r, p, x []int)
	bk = func(r, p, x []int) {
		if stopped {
			return
		}
		if len(p) == 0 && len(x) == 0 {
			if !fn(r) {
				stopped = true
			}
			return
		}
		for i := 0; i < len(p) && !stopped; i++ {
			v := p[i]
			var p2, x2 []int
			for _, u := range p {
				if u != v && adj(u, v) {
					p2 = append(p2, u)
				}
			}
			for _, u := range x {
				if adj(u, v) {
					x2 = append(x2, u)
				}
			}
			rv := append(append([]int(nil), r...), v)
			bk(rv, p2, x2)
			p = append(p[:i], p[i+1:]...)
			i--
			x = append(x, v)
		}
	}
	bk(nil, append([]int(nil), verts...), nil)
}

// cliqueSupportsAllTypes checks condition 1 for every degree and every
// input multiset (an ordered tuple has a valid assignment iff its multiset
// does, since g binds outputs to inputs pointwise and node constraints are
// multiset-based).
func cliqueSupportsAllTypes(prob *lcl.Problem, clique []int, degrees []int) bool {
	inC := make([]bool, prob.NumOut())
	for _, o := range clique {
		inC[o] = true
	}
	for _, d := range degrees {
		if len(prob.Node[d]) == 0 {
			return false
		}
		ok := true
		multisetsOf(prob.NumIn(), d, func(inputs idMultiset) {
			if !ok {
				return
			}
			if _, found := assignOutputs(prob, inC, inputs); !found {
				ok = false
			}
		})
		if !ok {
			return false
		}
	}
	return true
}

// assignOutputs finds the lexicographically first output tuple for the
// given ordered inputs with outputs drawn from the clique, satisfying g
// pointwise and the node constraint on the final multiset.
func assignOutputs(prob *lcl.Problem, inClique []bool, inputs []int) ([]int, bool) {
	d := len(inputs)
	out := make([]int, d)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == d {
			return prob.NodeAllowed(lcl.NewMultiset(append([]int(nil), out...)...))
		}
		for o := 0; o < prob.NumOut(); o++ {
			if !inClique[o] || !prob.GAllowed(inputs[i], o) {
				continue
			}
			out[i] = o
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	if rec(0) {
		return out, true
	}
	return nil, false
}

// Outputs returns the 0-round algorithm's output tuple for a node with the
// given per-port input labels (nil means all NoInput). The result is
// deterministic in the inputs only — the defining property of A_det in
// Theorem 3.10's proof.
func (z *ZeroRound) Outputs(inputs []int) ([]int, bool) {
	inC := make([]bool, z.Prob.NumOut())
	for _, o := range z.Clique {
		inC[o] = true
	}
	return assignOutputs(z.Prob, inC, inputs)
}

// Run applies the 0-round algorithm to every node of g, producing a
// half-edge labeling of z.Prob.
func (z *ZeroRound) Run(g *graph.Graph, fin []int) ([]int, error) {
	out := make([]int, g.NumHalfEdges())
	for v := 0; v < g.N(); v++ {
		inputs := make([]int, g.Deg(v))
		for p := range inputs {
			if fin != nil {
				inputs[p] = fin[g.HalfEdge(v, p)]
			}
		}
		lab, ok := z.Outputs(inputs)
		if !ok {
			return nil, errNoAssignment(v)
		}
		for p, o := range lab {
			out[g.HalfEdge(v, p)] = o
		}
	}
	return out, nil
}

type errNoAssignment int

func (e errNoAssignment) Error() string {
	return "re: zero-round witness has no assignment at node (degree/input outside decided range)"
}
