package re

import (
	"fmt"
	"sort"

	"repro/internal/lcl"
)

// Op selects the round elimination operator.
type Op int

// The two operators of Definitions 3.1 and 3.2.
const (
	OpR    Op = iota // R(Π): node constraint existential, edge universal
	OpRBar           // R̄(Π): node constraint universal, edge existential
)

func (o Op) String() string {
	if o == OpR {
		return "R"
	}
	return "R̄"
}

// Mode selects the label-universe generation strategy.
type Mode int

const (
	// Faithful enumerates every nonempty subset of the base alphabet as a
	// candidate label — Definitions 3.1/3.2 verbatim (minus the empty set,
	// which can never appear in a valid solution: it breaks the existential
	// node constraint of R and the g-constraint downstream). Feasible only
	// for small base alphabets.
	Faithful Mode = iota
	// Pruned restricts candidate labels to those that can appear in
	// maximal configurations of the universal-side constraint (the closure
	// family of the edge constraint for R; coordinates of maximal
	// universal node configurations for R̄), each additionally intersected
	// with every g(in). Restricting to these labels preserves solvability
	// and complexity: in R, any solution label B can be replaced by
	// K(K(B)) ∩ g(in) ⊇ B (universal edge constraints are closed downward,
	// existential node constraints upward); dually for R̄. This is the
	// standard round-eliminator simplification, adapted to inputs.
	Pruned
)

// Limits bounds construction work; zero values select defaults.
type Limits struct {
	MaxLabels     int // candidate alphabet cap (default 63, hard cap 63)
	MaxConfigs    int // per-degree configuration enumeration cap (default 2M)
	MaxExpandIter int // BFS states for maximal-config search (default 200k)
}

func (l Limits) withDefaults() Limits {
	if l.MaxLabels == 0 || l.MaxLabels > MaxBaseLabels {
		l.MaxLabels = MaxBaseLabels
	}
	if l.MaxConfigs == 0 {
		l.MaxConfigs = 2_000_000
	}
	if l.MaxExpandIter == 0 {
		l.MaxExpandIter = 200_000
	}
	return l
}

// Step is one application of R or R̄: the constructed problem plus the
// meaning of each of its output labels as a set of parent-problem labels.
type Step struct {
	Op      Op
	Prob    *lcl.Problem
	Meaning []Set // Meaning[newLabel] = set of parent output labels
}

// Apply constructs R(base) or R̄(base) per Definitions 3.1/3.2.
func Apply(base *lcl.Problem, op Op, mode Mode, lim Limits) (*Step, error) {
	lim = lim.withDefaults()
	L := base.NumOut()
	if L > MaxBaseLabels {
		return nil, fmt.Errorf("re: base alphabet %d exceeds %d", L, MaxBaseLabels)
	}
	full := Set(0)
	for i := 0; i < L; i++ {
		full = full.Add(i)
	}
	gMask := make([]Set, base.NumIn())
	for in := 0; in < base.NumIn(); in++ {
		for o := 0; o < L; o++ {
			if base.GAllowed(in, o) {
				gMask[in] = gMask[in].Add(o)
			}
		}
	}

	// 1. Candidate labels.
	var cand []Set
	switch mode {
	case Faithful:
		if L > 16 {
			return nil, fmt.Errorf("re: faithful mode needs base alphabet <= 16, got %d", L)
		}
		AllSubsets(full, func(s Set) bool {
			cand = append(cand, s)
			return true
		})
		sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
	case Pruned:
		seeds, err := prunedSeeds(base, op, full, lim)
		if err != nil {
			return nil, err
		}
		seen := map[Set]bool{}
		add := func(s Set) {
			if !s.Empty() && !seen[s] {
				seen[s] = true
				cand = append(cand, s)
			}
		}
		for _, s := range seeds {
			add(s)
			for _, gm := range gMask {
				add(s.Inter(gm))
			}
		}
		sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
	}
	if len(cand) > lim.MaxLabels {
		return nil, fmt.Errorf("re: %s produced %d candidate labels (cap %d); use Pruned mode or a smaller problem", op, len(cand), lim.MaxLabels)
	}

	// 2. Constraints over the candidate alphabet.
	newProb := &lcl.Problem{
		Name:    op.String() + "(" + base.Name + ")",
		InNames: append([]string(nil), base.InNames...),
		Node:    map[int][]lcl.Multiset{},
	}
	newProb.OutNames = make([]string, len(cand))
	for i, s := range cand {
		newProb.OutNames[i] = setName(s, base)
	}

	// Edge constraint.
	edgeOK := func(a, b Set) bool {
		if op == OpR {
			return universalEdge(base, a, b)
		}
		return existentialEdge(base, a, b)
	}
	for i := range cand {
		for j := i; j < len(cand); j++ {
			if edgeOK(cand[i], cand[j]) {
				newProb.Edge = append(newProb.Edge, lcl.NewMultiset(i, j))
			}
		}
	}

	// Node constraints per degree.
	for d := range base.Node {
		if cm := countMultisets(len(cand), d); cm > lim.MaxConfigs {
			return nil, fmt.Errorf("re: %s degree-%d enumeration needs %d configs (cap %d)", op, d, cm, lim.MaxConfigs)
		}
		var configs []lcl.Multiset
		multisetsOf(len(cand), d, func(m idMultiset) {
			sets := make([]Set, d)
			for k, id := range m {
				sets[k] = cand[id]
			}
			var ok bool
			if op == OpR {
				ok = existentialNode(base, d, sets)
			} else {
				ok = universalNode(base, d, sets)
			}
			if ok {
				configs = append(configs, lcl.NewMultiset(append([]int(nil), m...)...))
			}
		})
		if len(configs) > 0 {
			newProb.Node[d] = configs
		}
	}

	// g: g_new(in) = { B in cand : B ⊆ g_base(in) }.
	newProb.G = make([][]int, base.NumIn())
	for in := range newProb.G {
		for i, s := range cand {
			if s.Subset(gMask[in]) {
				newProb.G[in] = append(newProb.G[in], i)
			}
		}
	}
	if err := newProb.Validate(); err != nil {
		return nil, fmt.Errorf("re: constructed problem invalid: %w", err)
	}
	return &Step{Op: op, Prob: newProb, Meaning: cand}, nil
}

// prunedSeeds returns the candidate-label seeds for Pruned mode.
func prunedSeeds(base *lcl.Problem, op Op, full Set, lim Limits) ([]Set, error) {
	if op == OpR {
		// Edge constraint is universal: the closed sets of the Galois map
		// K(B) = { c : ∀ b ∈ B, {b,c} ∈ E } form the seed family. The image
		// of K is exactly the intersection closure of the compatibility
		// rows.
		rows := make([]Set, base.NumOut())
		for b := 0; b < base.NumOut(); b++ {
			for c := 0; c < base.NumOut(); c++ {
				if base.EdgeAllowed(b, c) {
					rows[b] = rows[b].Add(c)
				}
			}
		}
		return IntersectionClosure(rows), nil
	}
	// R̄: node constraint is universal. Seeds are the coordinate sets of
	// maximal configurations {A1,...,Ad} with A1 × ... × Ad ⊆ N^d,
	// enumerated by BFS expansion from the base configurations.
	seen := map[Set]bool{}
	var seeds []Set
	addSeed := func(s Set) {
		if !s.Empty() && !seen[s] {
			seen[s] = true
			seeds = append(seeds, s)
		}
	}
	for d, configs := range base.Node {
		maxCfgs, err := maximalUniversalNodeConfigs(base, d, configs, lim)
		if err != nil {
			return nil, err
		}
		for _, cfg := range maxCfgs {
			for _, s := range cfg {
				addSeed(s)
			}
		}
	}
	return seeds, nil
}

// maximalUniversalNodeConfigs enumerates the maximal (componentwise, as
// sorted multisets of sets) configurations [A1..Ad] with every selection in
// N^d, starting from the singleton configurations induced by N^d itself.
func maximalUniversalNodeConfigs(base *lcl.Problem, d int, configs []lcl.Multiset, lim Limits) ([][]Set, error) {
	type cfgKey string
	key := func(cfg []Set) cfgKey {
		sorted := append([]Set(nil), cfg...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return cfgKey(fmt.Sprint(sorted))
	}
	seen := map[cfgKey]bool{}
	var queue [][]Set
	push := func(cfg []Set) {
		k := key(cfg)
		if !seen[k] {
			seen[k] = true
			queue = append(queue, cfg)
		}
	}
	for _, m := range configs {
		cfg := make([]Set, d)
		for i, a := range m {
			cfg[i] = SetOf(a)
		}
		push(cfg)
	}
	var maximal [][]Set
	iter := 0
	for len(queue) > 0 {
		iter++
		if iter > lim.MaxExpandIter {
			return nil, fmt.Errorf("re: maximal-config search exceeded %d states at degree %d", lim.MaxExpandIter, d)
		}
		cfg := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		expanded := false
		for i := range cfg {
			for x := 0; x < base.NumOut(); x++ {
				if cfg[i].Has(x) {
					continue
				}
				next := append([]Set(nil), cfg...)
				next[i] = next[i].Add(x)
				if universalNode(base, d, next) {
					expanded = true
					push(next)
				}
			}
		}
		if !expanded {
			maximal = append(maximal, cfg)
		}
	}
	return maximal, nil
}

// edgeRowsCache mirrors node2Cache for the edge constraint:
// row[a] = { b : {a,b} ∈ E }. Both caches are keyed by problem pointer and
// only grow by one entry per constructed problem; the pipeline is
// single-threaded by design (document before sharing Steps across
// goroutines).
var edgeRowsCache = map[*lcl.Problem][]Set{}

func edgeRows(base *lcl.Problem) []Set {
	if rows, ok := edgeRowsCache[base]; ok {
		return rows
	}
	L := base.NumOut()
	rows := make([]Set, L)
	for a := 0; a < L; a++ {
		for b := 0; b < L; b++ {
			if base.EdgeAllowed(a, b) {
				rows[a] = rows[a].Add(b)
			}
		}
	}
	edgeRowsCache[base] = rows
	return rows
}

// universalEdge: ∀ a ∈ A, b ∈ B: {a,b} ∈ E (Definition 3.1's edge
// constraint for R).
func universalEdge(base *lcl.Problem, a, b Set) bool {
	rows := edgeRows(base)
	for _, x := range a.Members() {
		if !b.Subset(rows[x]) {
			return false
		}
	}
	return true
}

// existentialEdge: ∃ a ∈ A, b ∈ B: {a,b} ∈ E (Definition 3.2).
func existentialEdge(base *lcl.Problem, a, b Set) bool {
	rows := edgeRows(base)
	for _, x := range a.Members() {
		if !b.Inter(rows[x]).Empty() {
			return true
		}
	}
	return false
}

// node2Rows caches, per base problem, the degree-2 node constraint as
// bitset rows: row[a] = { b : {a,b} ∈ N² }. Degree 2 dominates the
// pipeline's work on paths/cycles, and the bitset form turns the
// per-selection multiset allocation into word operations.
var node2Cache = map[*lcl.Problem][]Set{}

func node2Rows(base *lcl.Problem) []Set {
	if rows, ok := node2Cache[base]; ok {
		return rows
	}
	L := base.NumOut()
	rows := make([]Set, L)
	for a := 0; a < L; a++ {
		for b := 0; b < L; b++ {
			if base.NodeAllowed(lcl.NewMultiset(a, b)) {
				rows[a] = rows[a].Add(b)
			}
		}
	}
	node2Cache[base] = rows
	return rows
}

// existentialNode: ∃ selection (a1..ad) ∈ A1 × ... × Ad with {a1..ad} ∈ N^d
// (Definition 3.1's node constraint for R).
func existentialNode(base *lcl.Problem, d int, sets []Set) bool {
	if d == 2 {
		rows := node2Rows(base)
		for _, a := range sets[0].Members() {
			if !sets[1].Inter(rows[a]).Empty() {
				return true
			}
		}
		return false
	}
	pick := make([]int, d)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == d {
			return base.NodeAllowed(lcl.NewMultiset(append([]int(nil), pick...)...))
		}
		for _, a := range sets[i].Members() {
			pick[i] = a
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

// universalNode: ∀ selections: {a1..ad} ∈ N^d (Definition 3.2's node
// constraint for R̄).
func universalNode(base *lcl.Problem, d int, sets []Set) bool {
	if d == 2 {
		rows := node2Rows(base)
		for _, a := range sets[0].Members() {
			if !sets[1].Subset(rows[a]) {
				return false
			}
		}
		return true
	}
	pick := make([]int, d)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == d {
			return base.NodeAllowed(lcl.NewMultiset(append([]int(nil), pick...)...))
		}
		for _, a := range sets[i].Members() {
			pick[i] = a
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

// setName renders a new label's meaning with base label names.
func setName(s Set, base *lcl.Problem) string {
	ms := s.Members()
	str := "["
	for i, m := range ms {
		if i > 0 {
			str += " "
		}
		str += base.OutNames[m]
	}
	return str + "]"
}
