package re

import (
	"testing"

	"repro/internal/lcl"
	"repro/internal/problems"
)

func TestSetBasics(t *testing.T) {
	s := SetOf(0, 2, 5)
	if s.Count() != 3 || !s.Has(2) || s.Has(1) {
		t.Fatalf("set ops broken: %v", s)
	}
	if got := s.Members(); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 5 {
		t.Errorf("members = %v", got)
	}
	if !SetOf(0, 2).Subset(s) || s.Subset(SetOf(0, 2)) {
		t.Error("subset broken")
	}
	if s.Inter(SetOf(2, 3)) != SetOf(2) {
		t.Error("inter broken")
	}
}

func TestAllSubsetsCount(t *testing.T) {
	count := 0
	AllSubsets(SetOf(0, 1, 2, 3), func(Set) bool { count++; return true })
	if count != 15 {
		t.Errorf("enumerated %d nonempty subsets of a 4-set, want 15", count)
	}
}

func TestIntersectionClosure(t *testing.T) {
	// rows for the 2-label "must differ" edge constraint: row(a)={b},
	// row(b)={a}; closure = {{a},{b}} (intersection is empty, dropped).
	rows := []Set{SetOf(1), SetOf(0)}
	fam := IntersectionClosure(rows)
	if len(fam) != 2 {
		t.Errorf("closure family %v, want two singletons", fam)
	}
	// rows with overlap: {0,1},{1,2} -> family {01,12,1}.
	fam2 := IntersectionClosure([]Set{SetOf(0, 1), SetOf(1, 2)})
	if len(fam2) != 3 {
		t.Errorf("closure family %v, want 3 members", fam2)
	}
}

func TestApplyRToSinklessOrientation(t *testing.T) {
	// Hand-checked example (see also the classic RE fixed point): for
	// sinkless orientation with Δ=3, R(SO) in pruned mode has labels
	// {O},{I} and is isomorphic to SO itself.
	so := problems.SinklessOrientation(3)
	r, err := Apply(so, OpR, Pruned, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Prob.NumOut() != 2 {
		t.Fatalf("R(SO) has %d labels, want 2: %v", r.Prob.NumOut(), r.Prob.OutNames)
	}
	if !Isomorphic(so, r.Prob) {
		t.Errorf("R(SO) should be isomorphic to SO\nSO:\n%s\nR(SO):\n%s", so, r.Prob)
	}
}

func TestSinklessOrientationFixedPoint(t *testing.T) {
	// The classic round elimination fixed point: iterating f = R̄∘R on
	// sinkless orientation cycles (R(R̄(R(SO))) ≅ SO up to renaming), so
	// the pipeline must return VerdictCycle — certifying SO is not
	// o(log* n), consistent with its true Θ(log n) complexity on trees.
	so := problems.SinklessOrientation(3)
	res, err := RunGapPipeline(so, []int{1, 2, 3}, Pruned, Limits{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictCycle {
		t.Fatalf("verdict = %v, want cycle", res.Verdict)
	}
}

func TestTrivialProblemZeroRound(t *testing.T) {
	p := problems.Trivial(3)
	w, ok := ZeroRoundSolvable(p, []int{1, 2, 3})
	if !ok {
		t.Fatal("trivial problem not 0-round solvable")
	}
	out, ok := w.Outputs([]int{0, 0, 0})
	if !ok || len(out) != 3 {
		t.Fatalf("witness outputs = %v ok=%v", out, ok)
	}
}

func TestColoringNotZeroRound(t *testing.T) {
	p := problems.Coloring(3, 2)
	if _, ok := ZeroRoundSolvable(p, []int{1, 2}); ok {
		t.Error("3-coloring decided 0-round solvable")
	}
	// And it must stay unsolvable down the sequence within a few levels
	// (its true complexity is Θ(log* n)).
	res, err := RunGapPipeline(p, []int{1, 2}, Pruned, Limits{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict == VerdictConstant {
		t.Errorf("3-coloring classified O(1) at level %d", res.Level)
	}
}

func TestEdgeGroupingZeroRoundWithInputs(t *testing.T) {
	p := problems.EdgeGrouping()
	w, ok := ZeroRoundSolvable(p, []int{1, 2, 3})
	if !ok {
		t.Fatal("edge grouping (identity relabeling) not 0-round solvable")
	}
	out, ok := w.Outputs([]int{0, 1, 0})
	if !ok {
		t.Fatal("witness failed on mixed inputs")
	}
	// g forces output == input here.
	want := []int{0, 1, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("outputs = %v, want %v", out, want)
		}
	}
}

func TestZeroRoundRespectsCliqueCondition(t *testing.T) {
	// Problem where each type has valid outputs but they are mutually
	// edge-incompatible: node allows {A,A} or {B,B}; edge allows only
	// {A,B}. Any single node can output, but two adjacent same-type nodes
	// clash: not 0-round solvable.
	b := lcl.NewBuilder("clash", nil, []string{"A", "B"})
	b.Node("A").Node("B").Node("A", "A").Node("B", "B")
	b.Edge("A", "B")
	p := b.MustBuild()
	if _, ok := ZeroRoundSolvable(p, []int{1, 2}); ok {
		t.Error("edge-incompatible problem decided 0-round solvable")
	}
}

func TestGapPipelineConstantForTrivialVariants(t *testing.T) {
	for _, p := range []*lcl.Problem{problems.Trivial(3), problems.EdgeGrouping()} {
		res, err := RunGapPipeline(p, []int{1, 2, 3}, Pruned, Limits{}, 3)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if res.Verdict != VerdictConstant || res.Level != 0 {
			t.Errorf("%s: verdict %v at level %d, want O(1) at 0", p.Name, res.Verdict, res.Level)
		}
	}
}

func TestIsomorphicBasic(t *testing.T) {
	a := problems.Coloring(3, 2)
	b := problems.Coloring(3, 2)
	// Rename labels by permuting the alphabet: rebuild with shuffled names.
	bl := lcl.NewBuilder("3col-renamed", nil, []string{"x", "y", "z"})
	for d := 1; d <= 2; d++ {
		for _, c := range []string{"x", "y", "z"} {
			cfg := make([]string, d)
			for i := range cfg {
				cfg[i] = c
			}
			bl.Node(cfg...)
		}
	}
	bl.Edge("x", "y").Edge("x", "z").Edge("y", "z")
	c := bl.MustBuild()
	if !Isomorphic(a, b) {
		t.Error("identical problems not isomorphic")
	}
	if !Isomorphic(a, c) {
		t.Error("renamed coloring not isomorphic")
	}
	if Isomorphic(a, problems.Coloring(4, 2)) {
		t.Error("3- and 4-coloring isomorphic?")
	}
	if Isomorphic(a, problems.MIS(2)) {
		t.Error("coloring isomorphic to MIS?")
	}
}

func TestCanonicalStableUnderRenaming(t *testing.T) {
	a := problems.MaximalMatching(3)
	// Rebuild with permuted label order: U, M, A instead of M, A, U.
	b := lcl.NewBuilder("mm2", nil, []string{"U", "M", "A"})
	for d := 1; d <= 3; d++ {
		matched := make([]string, d)
		matched[0] = "M"
		for i := 1; i < d; i++ {
			matched[i] = "A"
		}
		b.Node(matched...)
		unmatched := make([]string, d)
		for i := range unmatched {
			unmatched[i] = "U"
		}
		b.Node(unmatched...)
	}
	b.Edge("M", "M").Edge("A", "U").Edge("A", "A")
	p2 := b.MustBuild()
	if Canonical(a) != Canonical(p2) {
		t.Error("canonical form not invariant under label renaming")
	}
	if !Isomorphic(a, p2) {
		t.Error("renamed matching not isomorphic")
	}
}

func TestFaithfulVsPrunedAgreeOnSmallProblems(t *testing.T) {
	// Ablation-style correctness check: faithful and pruned modes agree on
	// 0-round solvability (the pruning-soundness argument in the Mode
	// documentation). Faithful mode squares the alphabet twice per f-step,
	// so the full f = R̄∘R comparison runs on <=2-label problems and the
	// single-step R comparison on 3-coloring.
	degrees := []int{1, 2}
	for _, p := range []*lcl.Problem{
		problems.ConsistentOrientation(),
		problems.Trivial(2),
	} {
		rF, errF0 := Apply(p, OpR, Faithful, Limits{})
		rP, errP0 := Apply(p, OpR, Pruned, Limits{})
		if errF0 != nil || errP0 != nil {
			t.Fatalf("%s R: faithful=%v pruned=%v", p.Name, errF0, errP0)
		}
		rrF, errF := Apply(rF.Prob, OpRBar, Faithful, Limits{})
		rrP, errP := Apply(rP.Prob, OpRBar, Pruned, Limits{})
		if errF != nil || errP != nil {
			t.Fatalf("%s R̄: faithful=%v pruned=%v", p.Name, errF, errP)
		}
		_, okF := ZeroRoundSolvable(rrF.Prob, degrees)
		_, okP := ZeroRoundSolvable(rrP.Prob, degrees)
		if okF != okP {
			t.Errorf("%s: faithful 0-round=%v, pruned=%v", p.Name, okF, okP)
		}
	}
	// Single-step comparison on a 3-label problem.
	col := problems.Coloring(3, 2)
	rF, errF := Apply(col, OpR, Faithful, Limits{})
	rP, errP := Apply(col, OpR, Pruned, Limits{})
	if errF != nil || errP != nil {
		t.Fatalf("3-coloring R: faithful=%v pruned=%v", errF, errP)
	}
	_, okF := ZeroRoundSolvable(rF.Prob, degrees)
	_, okP := ZeroRoundSolvable(rP.Prob, degrees)
	if okF != okP {
		t.Errorf("R(3-coloring): faithful 0-round=%v, pruned=%v", okF, okP)
	}
}

func TestFailureBoundDegrades(t *testing.T) {
	bounds := IterateBound34(1e6, 3, 1, 20, 3)
	if len(bounds) != 4 {
		t.Fatalf("bounds len = %d", len(bounds))
	}
	if v := bounds[0].Value(); v < 0.9e-6 || v > 1.1e-6 {
		t.Errorf("initial bound %v, want ~1e-6", v)
	}
	// Clamped values never improve across a step (the theorem only ever
	// weakens the guarantee).
	for i := 1; i < len(bounds); i++ {
		if bounds[i].Value() < bounds[i-1].Value()-1e-15 {
			t.Errorf("bound improved across a step: %v -> %v", bounds[i-1].Value(), bounds[i].Value())
		}
	}
	// At modest n the chained bound must go vacuous (honesty check: the
	// theorem needs tower-sized n0, cf. MinTowerHeightForGap).
	if !bounds[len(bounds)-1].Vacuous() {
		t.Error("bound unexpectedly survived at n=1e6")
	}
}

func TestFailureBoundSurvivesAtTowerScale(t *testing.T) {
	// At n = Tower(7)-scale the iterated bound must stay meaningful:
	// emulate with log2 n = 2^65536 via direct Step34 in log space.
	cur := FailureBound{Log2P: -1e300} // log2(1/n) for tower-sized n
	for t2 := 3; t2 >= 1; t2-- {
		cur = Step34(cur, Theorem34Params{Delta: 3, SigmaIn: 1, SigmaOut: 1 << 20, SigmaROut: 1 << 20, T: t2})
	}
	if cur.Vacuous() {
		t.Error("bound went vacuous even at tower-sized n")
	}
}

func TestMinTowerHeightForGap(t *testing.T) {
	// Constant runtimes admit a tower height; (3.3) forces h >= 2T+5.
	for _, tc := range []struct{ T, delta int }{{1, 3}, {2, 2}, {0, 2}} {
		h := MinTowerHeightForGap(tc.T, tc.delta, 1)
		if h < 0 {
			t.Errorf("T=%d Δ=%d: no tower height found", tc.T, tc.delta)
			continue
		}
		if h < 2*tc.T+5 {
			t.Errorf("T=%d: height %d violates (3.3)", tc.T, h)
		}
	}
}

func TestLog2SMatchesFormula(t *testing.T) {
	p := Theorem34Params{Delta: 2, SigmaIn: 1, SigmaOut: 3, SigmaROut: 7, T: 1}
	// S = (10*2*(1+7))^(4*2^2) = 160^16; log2 = 16*log2(160).
	want := 16 * 7.321928094887363
	got := Log2S(p)
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("Log2S = %v, want %v", got, want)
	}
}
