package re

import (
	"fmt"
	"sort"

	"repro/internal/lcl"
)

// Problem isomorphism up to renaming of *output* labels (input labels are
// fixed — they are shared across the whole round elimination sequence).
// Used for fixed-point/cycle detection in iterated R̄∘R: reaching a problem
// isomorphic to an earlier one proves the sequence never becomes 0-round
// solvable, which (by Theorem 3.10's contrapositive) certifies an
// Ω(log* n) lower bound for the original problem.

// labelSignature computes a renaming-invariant signature per output label,
// refined iteratively (1-dimensional Weisfeiler–Leman over the constraint
// structure).
func labelSignatures(p *lcl.Problem, rounds int) []string {
	L := p.NumOut()
	sig := make([]string, L)
	// Initial: g-membership vector + self-loop flag.
	for o := 0; o < L; o++ {
		s := ""
		for in := 0; in < p.NumIn(); in++ {
			if p.GAllowed(in, o) {
				s += "1"
			} else {
				s += "0"
			}
		}
		if p.EdgeAllowed(o, o) {
			s += "S"
		}
		sig[o] = s
	}
	for r := 0; r < rounds; r++ {
		next := make([]string, L)
		for o := 0; o < L; o++ {
			// Edge neighborhood multiset.
			var edges []string
			for o2 := 0; o2 < L; o2++ {
				if p.EdgeAllowed(o, o2) {
					edges = append(edges, sig[o2])
				}
			}
			sort.Strings(edges)
			// Node configuration contexts: for each config containing o,
			// the sorted signatures of its co-members.
			var nodes []string
			for d, list := range p.Node {
				for _, m := range list {
					count := 0
					var rest []string
					for _, x := range m {
						if x == o {
							count++
						}
					}
					if count == 0 {
						continue
					}
					for _, x := range m {
						rest = append(rest, sig[x])
					}
					sort.Strings(rest)
					nodes = append(nodes, fmt.Sprintf("d%d#%d:%v", d, count, rest))
				}
			}
			sort.Strings(nodes)
			next[o] = fmt.Sprintf("%s|E%v|N%v", sig[o], edges, nodes)
		}
		// Compress to keep strings short. Class ids are assigned in sorted
		// string order so they are canonical across problems (required for
		// Isomorphic's cross-problem signature matching).
		uniq := map[string]bool{}
		for _, s := range next {
			uniq[s] = true
		}
		classes := make([]string, 0, len(uniq))
		for s := range uniq {
			classes = append(classes, s)
		}
		sort.Strings(classes)
		comp := make(map[string]int, len(classes))
		for i, s := range classes {
			comp[s] = i
		}
		for o := range next {
			sig[o] = fmt.Sprintf("%d", comp[next[o]])
		}
	}
	return sig
}

// Canonical returns a canonical string for the problem under output-label
// renaming, suitable for fixed-point detection. It canonicalizes greedily
// by refined signature with deterministic tie-breaking, then renders all
// constraints under the resulting relabeling; problems with equal
// canonical strings are isomorphic for all practical battery cases, and
// Isomorphic double-checks with an exact search.
func Canonical(p *lcl.Problem) string {
	L := p.NumOut()
	sig := labelSignatures(p, 3)
	order := make([]int, L)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if sig[order[i]] != sig[order[j]] {
			return sig[order[i]] < sig[order[j]]
		}
		return order[i] < order[j]
	})
	rename := make([]int, L)
	for newID, old := range order {
		rename[old] = newID
	}
	return renderRenamed(p, rename)
}

func renderRenamed(p *lcl.Problem, rename []int) string {
	var parts []string
	degrees := make([]int, 0, len(p.Node))
	for d := range p.Node {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	for _, d := range degrees {
		var cfgs []string
		for _, m := range p.Node[d] {
			r := make([]int, len(m))
			for i, x := range m {
				r[i] = rename[x]
			}
			sort.Ints(r)
			cfgs = append(cfgs, fmt.Sprint(r))
		}
		sort.Strings(cfgs)
		parts = append(parts, fmt.Sprintf("N%d:%v", d, cfgs))
	}
	var edges []string
	for _, m := range p.Edge {
		a, b := rename[m[0]], rename[m[1]]
		if a > b {
			a, b = b, a
		}
		edges = append(edges, fmt.Sprintf("(%d,%d)", a, b))
	}
	sort.Strings(edges)
	parts = append(parts, fmt.Sprintf("E:%v", edges))
	for in := 0; in < p.NumIn(); in++ {
		var gs []int
		for o := 0; o < p.NumOut(); o++ {
			if p.GAllowed(in, o) {
				gs = append(gs, rename[o])
			}
		}
		sort.Ints(gs)
		parts = append(parts, fmt.Sprintf("g%d:%v", in, gs))
	}
	return fmt.Sprintf("L%d|%v", p.NumOut(), parts)
}

// isoBudget bounds the backtracking search; problems whose symmetry
// groups blow past it are reported non-isomorphic, which is the safe
// direction for cycle detection (a missed cycle only yields an
// inconclusive pipeline verdict, never a wrong certificate).
const isoBudget = 2_000_000

// Isomorphic decides whether two problems are equal up to output label
// renaming (inputs fixed), by signature-pruned backtracking with a node
// budget. Within the budget the answer is exact.
func Isomorphic(a, b *lcl.Problem) bool {
	if a.NumOut() != b.NumOut() || a.NumIn() != b.NumIn() {
		return false
	}
	L := a.NumOut()
	// Deep signature refinement (L rounds reaches the stable partition);
	// the finer the classes, the smaller the backtracking branching.
	rounds := 3
	if L > 8 {
		rounds = 6
	}
	sa := labelSignatures(a, rounds)
	sb := labelSignatures(b, rounds)
	// Signature multisets must match.
	ca := append([]string(nil), sa...)
	cb := append([]string(nil), sb...)
	sort.Strings(ca)
	sort.Strings(cb)
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	bTarget := renderRenamed(b, identity(L))
	perm := make([]int, L)
	used := make([]bool, L)
	for i := range perm {
		perm[i] = -1
	}
	budget := isoBudget
	var rec func(i int) bool
	rec = func(i int) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if i == L {
			return renderRenamed(a, perm) == bTarget
		}
		for j := 0; j < L; j++ {
			if used[j] || sa[i] != sb[j] {
				continue
			}
			// Local consistency: g and edge rows must match under the
			// partial mapping.
			if !consistent(a, b, perm, i, j) {
				continue
			}
			perm[i] = j
			used[j] = true
			if rec(i + 1) {
				return true
			}
			perm[i] = -1
			used[j] = false
		}
		return false
	}
	return rec(0)
}

func identity(n int) []int {
	id := make([]int, n)
	for i := range id {
		id[i] = i
	}
	return id
}

func consistent(a, b *lcl.Problem, perm []int, i, j int) bool {
	for in := 0; in < a.NumIn(); in++ {
		if a.GAllowed(in, i) != b.GAllowed(in, j) {
			return false
		}
	}
	if a.EdgeAllowed(i, i) != b.EdgeAllowed(j, j) {
		return false
	}
	for k, pk := range perm {
		if pk < 0 || k == i {
			continue
		}
		if a.EdgeAllowed(i, k) != b.EdgeAllowed(j, pk) {
			return false
		}
	}
	return true
}
