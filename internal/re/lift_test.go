package re

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/lcl"
	"repro/internal/problems"
)

// TestLiftFromBruteForce validates Lemma 3.9 directly: any valid solution
// of R̄(R(Q)) on a small forest lifts to a valid solution of Q.
func TestLiftFromBruteForce(t *testing.T) {
	cases := []struct {
		prob   *lcl.Problem
		graphs []*graph.Graph
	}{
		{problems.Trivial(3), []*graph.Graph{graph.Path(3), graph.Star(3)}},
		{problems.ConsistentOrientation(), []*graph.Graph{graph.Path(4)}},
		{problems.Coloring(3, 2), []*graph.Graph{graph.Path(3), graph.Path(4)}},
	}
	for _, tc := range cases {
		rStep, err := Apply(tc.prob, OpR, Pruned, Limits{})
		if err != nil {
			t.Fatalf("%s: %v", tc.prob.Name, err)
		}
		rrStep, err := Apply(rStep.Prob, OpRBar, Pruned, Limits{})
		if err != nil {
			t.Fatalf("%s: %v", tc.prob.Name, err)
		}
		for _, g := range tc.graphs {
			foutRR, ok := rrStep.Prob.BruteForceSolve(g, nil)
			if !ok {
				t.Fatalf("%s: R̄R unsolvable on %d-node graph — RE broke solvability", tc.prob.Name, g.N())
			}
			fout, err := LiftOnce(tc.prob, rStep, rrStep, g, nil, nil, foutRR)
			if err != nil {
				t.Fatalf("%s: lift failed: %v", tc.prob.Name, err)
			}
			if vs := tc.prob.Verify(g, nil, fout); len(vs) != 0 {
				t.Errorf("%s: lifted solution invalid: %v", tc.prob.Name, vs[0])
			}
		}
	}
}

// TestSolvabilityPreservedByRE: if Q is solvable on a graph, so is R̄(R(Q))
// (the round elimination direction), and vice versa via the lift — checked
// by brute force on tiny graphs.
func TestSolvabilityPreservedByRE(t *testing.T) {
	for _, tc := range []struct {
		prob     *lcl.Problem
		g        *graph.Graph
		solvable bool
	}{
		{problems.Coloring(2, 2), graph.Cycle(5), false},
		{problems.Coloring(2, 2), graph.Cycle(6), true},
		{problems.Coloring(3, 2), graph.Cycle(5), true},
	} {
		rStep, err := Apply(tc.prob, OpR, Pruned, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		rrStep, err := Apply(rStep.Prob, OpRBar, Pruned, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		_, okBase := tc.prob.BruteForceSolve(tc.g, nil)
		_, okRR := rrStep.Prob.BruteForceSolve(tc.g, nil)
		if okBase != tc.solvable {
			t.Errorf("%s on n=%d: base solvable=%v, want %v", tc.prob.Name, tc.g.N(), okBase, tc.solvable)
		}
		if okRR != okBase {
			t.Errorf("%s on n=%d: R̄R solvable=%v but base=%v", tc.prob.Name, tc.g.N(), okRR, okBase)
		}
	}
}

// TestSolveConstantEndToEnd runs the full Theorem 3.10 reconstruction on
// problems the pipeline classifies O(1), over random forests.
func TestSolveConstantEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, p := range []*lcl.Problem{problems.Trivial(3), problems.EdgeGrouping()} {
		res, err := RunGapPipeline(p, []int{1, 2, 3}, Pruned, Limits{}, 3)
		if err != nil || res.Verdict != VerdictConstant {
			t.Fatalf("%s: %v %v", p.Name, res.Verdict, err)
		}
		for trial := 0; trial < 5; trial++ {
			g := graph.RandomForest(40, 4, 3, rng)
			var fin []int
			if p.NumIn() > 1 {
				fin = make([]int, g.NumHalfEdges())
				for h := range fin {
					fin[h] = rng.Intn(p.NumIn())
				}
			}
			fout, err := res.SolveConstant(g, fin)
			if err != nil {
				t.Fatalf("%s: SolveConstant: %v", p.Name, err)
			}
			if vs := p.Verify(g, fin, fout); len(vs) != 0 {
				t.Errorf("%s: constant-round solution invalid: %v", p.Name, vs[0])
			}
		}
	}
}

// TestSolveConstantDeeperLevel forces at least one lift level by building
// an O(1) problem that is NOT 0-round solvable: 3-coloring restricted to
// ...no such tree LCL exists among naturals easily, so we use an artificial
// one: "output must differ from the input mark on this half-edge" where
// two input marks exist and three outputs — 0-round solvable. Instead, to
// exercise Level >= 1, we construct "orientation with both-allowed": each
// edge must be oriented {O, I}, any node configuration allowed. A node
// cannot decide alone (adversarial ports), so 0 rounds fail, but one round
// of coordination (via R̄R's 0-round solution) succeeds.
func TestSolveConstantDeeperLevel(t *testing.T) {
	b := lcl.NewBuilder("free-orientation", nil, []string{"O", "I"})
	for d := 1; d <= 3; d++ {
		for numOut := 0; numOut <= d; numOut++ {
			cfg := make([]string, d)
			for i := range cfg {
				if i < numOut {
					cfg[i] = "O"
				} else {
					cfg[i] = "I"
				}
			}
			b.Node(cfg...)
		}
	}
	b.Edge("O", "I")
	p := b.MustBuild()
	res, err := RunGapPipeline(p, []int{1, 2, 3}, Pruned, Limits{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictConstant {
		t.Fatalf("free orientation verdict %v, want O(1)", res.Verdict)
	}
	if res.Level < 1 {
		t.Fatalf("free orientation solved at level %d; expected a lift to be exercised", res.Level)
	}
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomTree(30, 3, rng)
		fout, err := res.SolveConstant(g, nil)
		if err != nil {
			t.Fatalf("SolveConstant: %v", err)
		}
		if vs := p.Verify(g, nil, fout); len(vs) != 0 {
			t.Errorf("lifted orientation invalid: %v", vs[0])
		}
	}
}
