package re

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lcl"
)

func TestSetOfCardinalityProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var labels []int
		for _, r := range raw {
			labels = append(labels, int(r%60))
		}
		s := SetOf(labels...)
		uniq := map[int]bool{}
		for _, l := range labels {
			uniq[l] = true
		}
		if bits.OnesCount64(uint64(s)) != len(uniq) {
			return false
		}
		for l := range uniq {
			if !s.Has(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllSubsetsEnumeratesPowerSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var labels []int
		for len(labels) < 1+rng.Intn(5) {
			labels = append(labels, rng.Intn(12))
		}
		u := SetOf(labels...)
		count := 0
		seen := map[Set]bool{}
		AllSubsets(u, func(s Set) bool {
			count++
			seen[s] = true
			// Every enumerated set is a subset of the universe.
			return s&^u == 0
		})
		// AllSubsets enumerates the *nonempty* subsets.
		return count == 1<<uint(bits.OnesCount64(uint64(u)))-1 && len(seen) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectionClosureIsClosedAndContainsInput(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([]Set, 1+rng.Intn(6))
		for i := range rows {
			rows[i] = Set(rng.Intn(1 << 10))
		}
		closed := IntersectionClosure(rows)
		in := map[Set]bool{}
		for _, s := range closed {
			in[s] = true
		}
		for _, r := range rows {
			if r != 0 && !in[r] {
				return false
			}
		}
		for _, a := range closed {
			for _, b := range closed {
				if c := a & b; c != 0 && !in[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCanonicalInvariantUnderRandomRenaming renames output labels of
// random small problems by a random permutation and checks the canonical
// string is unchanged — the property fixed-point detection rests on.
func TestCanonicalInvariantUnderRandomRenaming(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomNECProblem(rng)
		perm := rng.Perm(p.NumOut())
		q := renameOutputs(p, perm)
		return Canonical(p) == Canonical(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomNECProblem draws a small random problem over degrees {1, 2}.
func randomNECProblem(rng *rand.Rand) *lcl.Problem {
	k := 2 + rng.Intn(2)
	names := make([]string, k)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	p := &lcl.Problem{
		Name:     "rand",
		InNames:  []string{"·"},
		OutNames: names,
		Node:     map[int][]lcl.Multiset{},
	}
	for a := 0; a < k; a++ {
		if rng.Intn(2) == 0 {
			p.Node[1] = append(p.Node[1], lcl.NewMultiset(a))
		}
		for b := a; b < k; b++ {
			if rng.Intn(2) == 0 {
				p.Node[2] = append(p.Node[2], lcl.NewMultiset(a, b))
			}
			if rng.Intn(2) == 0 {
				p.Edge = append(p.Edge, lcl.NewMultiset(a, b))
			}
		}
	}
	all := make([]int, k)
	for i := range all {
		all[i] = i
	}
	p.G = [][]int{all}
	return p
}

// renameOutputs applies a label permutation to every constraint.
func renameOutputs(p *lcl.Problem, perm []int) *lcl.Problem {
	q := &lcl.Problem{
		Name:     p.Name + "-renamed",
		InNames:  append([]string(nil), p.InNames...),
		OutNames: make([]string, p.NumOut()),
		Node:     map[int][]lcl.Multiset{},
	}
	for old, new_ := range perm {
		q.OutNames[new_] = p.OutNames[old]
	}
	for d, list := range p.Node {
		for _, m := range list {
			r := make(lcl.Multiset, len(m))
			for i, x := range m {
				r[i] = perm[x]
			}
			q.Node[d] = append(q.Node[d], lcl.NewMultiset(r...))
		}
	}
	for _, m := range p.Edge {
		q.Edge = append(q.Edge, lcl.NewMultiset(perm[m[0]], perm[m[1]]))
	}
	q.G = make([][]int, p.NumIn())
	for in := range q.G {
		for _, o := range p.G[in] {
			q.G[in] = append(q.G[in], perm[o])
		}
	}
	return q
}

// TestApplyPreservesInputAlphabet: R and R̄ keep Σin fixed (Definition
// 3.1 sets Σ^{R(Π)}_in = Σ^Π_in) on random problems.
func TestApplyPreservesInputAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		p := randomNECProblem(rng)
		if p.Validate() != nil {
			continue
		}
		for _, op := range []Op{OpR, OpRBar} {
			st, err := Apply(p, op, Faithful, Limits{})
			if err != nil {
				continue // alphabet blow-up guard tripped; acceptable
			}
			if got, want := st.Prob.NumIn(), p.NumIn(); got != want {
				t.Fatalf("op %v changed input alphabet: %d -> %d", op, want, got)
			}
		}
	}
}
