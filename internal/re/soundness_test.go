package re

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/lcl"
)

// randomNEC generates a random node-edge-checkable problem over `labels`
// output labels and optionally 2 input labels, with degree 1..maxDeg
// configurations. Solvability is not guaranteed.
func randomNEC(rng *rand.Rand, labels, maxDeg int, withInputs bool) *lcl.Problem {
	outNames := []string{"A", "B", "C", "D"}[:labels]
	var inNames []string
	if withInputs {
		inNames = []string{"x", "y"}
	}
	b := lcl.NewBuilder("rand", inNames, outNames)
	for d := 1; d <= maxDeg; d++ {
		any := false
		cfg := make([]string, d)
		var rec func(pos, min int)
		rec = func(pos, min int) {
			if pos == d {
				if rng.Intn(3) == 0 {
					b.Node(cfg...)
					any = true
				}
				return
			}
			for c := min; c < labels; c++ {
				cfg[pos] = outNames[c]
				rec(pos+1, c)
			}
		}
		rec(0, 0)
		if !any {
			for i := range cfg {
				cfg[i] = outNames[0]
			}
			b.Node(cfg...)
		}
	}
	hasEdge := false
	for x := 0; x < labels; x++ {
		for y := x; y < labels; y++ {
			if rng.Intn(3) == 0 {
				b.Edge(outNames[x], outNames[y])
				hasEdge = true
			}
		}
	}
	if !hasEdge {
		b.Edge(outNames[0], outNames[0])
	}
	if withInputs {
		// Random nonempty g rows.
		for _, in := range inNames {
			var allowed []string
			for c := 0; c < labels; c++ {
				if rng.Intn(2) == 0 {
					allowed = append(allowed, outNames[c])
				}
			}
			if len(allowed) == 0 {
				allowed = append(allowed, outNames[rng.Intn(labels)])
			}
			b.Allow(in, allowed...)
		}
	}
	return b.MustBuild()
}

// TestPipelineSoundnessOnRandomProblems is the adversarial soundness check
// for the whole Theorem 3.10 machinery: on random problems, whenever the
// pipeline certifies O(1), the reconstructed constant-round algorithm must
// produce verifier-clean solutions on random forests (with random inputs
// where applicable). Any unsoundness in the pruning, the 0-round decision,
// or the Lemma 3.9 lift surfaces here.
func TestPipelineSoundnessOnRandomProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	constants, cycles := 0, 0
	for trial := 0; trial < 60; trial++ {
		withInputs := trial%3 == 0
		p := randomNEC(rng, 2+rng.Intn(2), 2, withInputs)
		res, err := RunGapPipeline(p, []int{1, 2}, Pruned, Limits{}, 2)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, p)
		}
		switch res.Verdict {
		case VerdictConstant:
			constants++
			for rep := 0; rep < 3; rep++ {
				g := graph.RandomForest(20, 3, 2, rng)
				var fin []int
				if p.NumIn() > 1 {
					fin = make([]int, g.NumHalfEdges())
					for h := range fin {
						fin[h] = rng.Intn(p.NumIn())
					}
				}
				fout, err := res.SolveConstant(g, fin)
				if err != nil {
					t.Fatalf("trial %d: SolveConstant: %v\n%s", trial, err, p)
				}
				if vs := p.Verify(g, fin, fout); len(vs) != 0 {
					t.Fatalf("trial %d: UNSOUND pipeline — invalid solution: %v\n%s", trial, vs[0], p)
				}
			}
		case VerdictCycle:
			cycles++
			// A cycle certifies the problem is not o(log* n); consistency
			// check: it must then not be 0-round solvable at any computed
			// level.
			for l := 0; l <= res.Level; l++ {
				if _, ok := ZeroRoundSolvable(res.Seq.ProblemAt(l), []int{1, 2}); ok {
					t.Fatalf("trial %d: cycle verdict but level %d is 0-round solvable\n%s", trial, l, p)
				}
			}
		}
	}
	if constants == 0 {
		t.Error("no random problem was classified O(1) — generator too harsh for the test to bite")
	}
	t.Logf("random pipeline outcomes: %d O(1), %d cycles, %d other", constants, cycles, 60-constants-cycles)
}

// TestZeroRoundWitnessAlwaysVerifies: whenever the 0-round decider says
// yes (including with inputs), running the witness on random forests with
// arbitrary inputs yields verifier-clean solutions.
func TestZeroRoundWitnessAlwaysVerifies(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	hits := 0
	for trial := 0; trial < 80; trial++ {
		p := randomNEC(rng, 2+rng.Intn(3), 3, trial%2 == 0)
		w, ok := ZeroRoundSolvable(p, []int{1, 2, 3})
		if !ok {
			continue
		}
		hits++
		for rep := 0; rep < 3; rep++ {
			g := graph.RandomTree(15, 3, rng)
			var fin []int
			if p.NumIn() > 1 {
				fin = make([]int, g.NumHalfEdges())
				for h := range fin {
					fin[h] = rng.Intn(p.NumIn())
				}
			}
			fout, err := w.Run(g, fin)
			if err != nil {
				t.Fatalf("trial %d: witness run: %v\n%s", trial, err, p)
			}
			if vs := p.Verify(g, fin, fout); len(vs) != 0 {
				t.Fatalf("trial %d: UNSOUND 0-round witness: %v\n%s", trial, vs[0], p)
			}
		}
	}
	if hits == 0 {
		t.Error("no 0-round-solvable random problems generated")
	}
}

// TestREPreservesSolvabilityRandom: R̄(R(Π)) is solvable on a small tree
// iff Π is (brute force both sides) — the two directions of round
// elimination, fuzzed.
func TestREPreservesSolvabilityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	checked := 0
	for trial := 0; trial < 30; trial++ {
		p := randomNEC(rng, 2, 2, false)
		rStep, err := Apply(p, OpR, Pruned, Limits{})
		if err != nil {
			continue
		}
		rrStep, err := Apply(rStep.Prob, OpRBar, Pruned, Limits{})
		if err != nil {
			continue
		}
		for _, g := range []*graph.Graph{graph.Path(3), graph.Path(4), graph.Star(2)} {
			_, okBase := p.BruteForceSolve(g, nil)
			foutRR, okRR := rrStep.Prob.BruteForceSolve(g, nil)
			if okBase != okRR {
				t.Fatalf("trial %d: solvability differs (base %v, R̄R %v) on %d nodes\n%s",
					trial, okBase, okRR, g.N(), p)
			}
			if okRR {
				fout, err := LiftOnce(p, rStep, rrStep, g, nil, nil, foutRR)
				if err != nil {
					t.Fatalf("trial %d: lift: %v\n%s", trial, err, p)
				}
				if vs := p.Verify(g, nil, fout); len(vs) != 0 {
					t.Fatalf("trial %d: lifted solution invalid: %v\n%s", trial, vs[0], p)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no random problems small enough to check")
	}
}
