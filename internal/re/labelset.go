// Package re implements the round elimination machinery of Section 3: the
// operators R(Π) and R̄(Π) (Definitions 3.1 and 3.2, in the paper's general
// form with input labels and irregular degrees), the 0-round solvability
// decision from the proof of Theorem 3.10, the algorithm lift of
// Lemma 3.9, iterated problem sequences with fixed-point detection, and
// the failure-probability bookkeeping of Theorem 3.4.
package re

import (
	"fmt"
	"math/bits"
)

// Set is a label set over a base alphabet of at most 63 labels, as a
// bitmask. The round elimination operators exponentiate alphabets; Set is
// the currency they trade in.
type Set uint64

// MaxBaseLabels is the largest base alphabet representable in a Set.
const MaxBaseLabels = 63

// SetOf builds a set from labels.
func SetOf(labels ...int) Set {
	var s Set
	for _, l := range labels {
		s |= 1 << uint(l)
	}
	return s
}

// Has reports membership.
func (s Set) Has(l int) bool { return s&(1<<uint(l)) != 0 }

// Add returns s ∪ {l}.
func (s Set) Add(l int) Set { return s | 1<<uint(l) }

// Count returns |s|.
func (s Set) Count() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether s is empty.
func (s Set) Empty() bool { return s == 0 }

// Subset reports s ⊆ t.
func (s Set) Subset(t Set) bool { return s&^t == 0 }

// Inter returns s ∩ t.
func (s Set) Inter(t Set) Set { return s & t }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Members returns the sorted elements of s.
func (s Set) Members() []int {
	out := make([]int, 0, s.Count())
	for x := uint64(s); x != 0; x &= x - 1 {
		out = append(out, bits.TrailingZeros64(x))
	}
	return out
}

// String renders the set as {a,b,c} of label indices.
func (s Set) String() string {
	ms := s.Members()
	str := "{"
	for i, m := range ms {
		if i > 0 {
			str += ","
		}
		str += fmt.Sprintf("%d", m)
	}
	return str + "}"
}

// AllSubsets enumerates every nonempty subset of universe, invoking fn;
// enumeration stops if fn returns false.
func AllSubsets(universe Set, fn func(Set) bool) {
	// Standard subset-of-mask iteration, skipping the empty set.
	u := uint64(universe)
	for sub := u; sub != 0; sub = (sub - 1) & u {
		if !fn(Set(sub)) {
			return
		}
	}
}

// IntersectionClosure returns the family of all intersections of nonempty
// subcollections of the given sets (the image of the Galois map K, i.e.
// the closed sets of the edge-constraint closure used by pruned round
// elimination), deduplicated, with empty sets dropped.
func IntersectionClosure(rows []Set) []Set {
	seen := map[Set]bool{}
	var family []Set
	add := func(s Set) bool {
		if s.Empty() || seen[s] {
			return false
		}
		seen[s] = true
		family = append(family, s)
		return true
	}
	for _, r := range rows {
		add(r)
	}
	// Close under pairwise intersection.
	for changed := true; changed; {
		changed = false
		// Iterate over a snapshot; new elements get processed next sweep.
		snapshot := append([]Set(nil), family...)
		for i := 0; i < len(snapshot); i++ {
			for j := i + 1; j < len(snapshot); j++ {
				if add(snapshot[i].Inter(snapshot[j])) {
					changed = true
				}
			}
		}
	}
	return family
}

// Multiset of label ids, sorted ascending, used for configurations over
// the *new* alphabet during construction (ids index the candidate list).
type idMultiset []int

func (m idMultiset) key() string {
	s := ""
	for _, x := range m {
		s += fmt.Sprintf("%d,", x)
	}
	return s
}

// multisetsOf enumerates sorted multisets of the given size over ids
// 0..count-1, invoking fn for each. fn must not retain the slice.
func multisetsOf(count, size int, fn func(idMultiset)) {
	m := make(idMultiset, size)
	var rec func(pos, min int)
	rec = func(pos, min int) {
		if pos == size {
			fn(m)
			return
		}
		for v := min; v < count; v++ {
			m[pos] = v
			rec(pos+1, v)
		}
	}
	rec(0, 0)
}

// countMultisets returns C(count+size-1, size), the number of sorted
// multisets, saturating at a large sentinel to avoid overflow.
func countMultisets(count, size int) int {
	result := 1
	for i := 0; i < size; i++ {
		result *= count + i
		result /= i + 1
		if result > 1<<40 {
			return 1 << 40
		}
	}
	return result
}
