// Observability wiring for the engine: every instrument the service
// stack exports through /metricsz lives here, registered into one
// obs.Set at construction. Hot-path instruments (per-decider latency
// histograms and memo-outcome counters) are pre-resolved into a map so
// a served request pays one map lookup and a few atomic operations;
// everything whose source of truth is another subsystem (memo cache
// counters, job states, snapshot age) is a sampled collect callback
// evaluated only at scrape time.
package service

import (
	"strconv"
	"time"

	"repro/internal/jobs"
	"repro/internal/memo"
	"repro/internal/obs"
)

// deciderObs is one decider's hot-path instruments.
type deciderObs struct {
	latency      *obs.Histogram
	hits         *obs.Counter
	misses       *obs.Counter
	errors       *obs.Counter
	sealedHits   *obs.Counter
	sealedMisses *obs.Counter
}

// engineObs bundles the engine's observability state.
type engineObs struct {
	set *obs.Set
	// decider is fixed at construction (like byDecider), so request
	// serving reads it without locks.
	decider map[string]*deciderObs
	// censusRate is the throughput of the most recent census progress
	// tick, in census entries (orbit representatives when dedup) per
	// second.
	censusRate *obs.Gauge
	// checkpoint observes snapshot-checkpoint durations (fed by the
	// jobs manager's OnCheckpoint hook).
	checkpoint *obs.Histogram
	// batch observes ClassifyBatch request sizes.
	batch *obs.Histogram
	// batchDedup observes, per batch, the fraction of exact-fingerprint
	// items resolved by intra-batch dedup (0 = all unique, →1 = all
	// duplicates of one key).
	batchDedup *obs.Histogram
	// batchSealedRate / batchMemoRate observe, per batch, the fraction
	// of the deduplicated key set each read tier served.
	batchSealedRate *obs.Histogram
	batchMemoRate   *obs.Histogram
	// batchItems counts batch items by resolution tier (fixed label
	// set; pre-resolved so fan-out pays only atomic increments).
	batchItemsSealed    *obs.Counter
	batchItemsMemo      *obs.Counter
	batchItemsComputed  *obs.Counter
	batchItemsCoalesced *obs.Counter
	batchItemsInexact   *obs.Counter
	batchItemsError     *obs.Counter
}

// observeBatchItems folds one batch's fan-out tallies into the
// per-tier item counters.
func (eo *engineObs) observeBatchItems(st *BatchStats) {
	eo.batchItemsSealed.Add(uint64(st.SealedHits))
	eo.batchItemsMemo.Add(uint64(st.MemoHits))
	eo.batchItemsComputed.Add(uint64(st.Computed))
	eo.batchItemsCoalesced.Add(uint64(st.Coalesced))
	eo.batchItemsInexact.Add(uint64(st.Inexact))
	eo.batchItemsError.Add(uint64(st.Errors))
}

// ratioBuckets is the bucket layout for per-batch fraction histograms
// (dedup ratio, per-tier hit rates): fixed [0, 1] resolution.
var ratioBuckets = []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}

// newEngineObs registers the construction-time instruments (everything
// that does not sample live engine state). Engine-state collect
// callbacks are added later by finishObs, once the job manager exists.
func newEngineObs(set *obs.Set, deciders []string) *engineObs {
	r := set.Registry
	// Process-level families ride along with every instrumented engine:
	// the Go runtime collector (GC pauses, sched latency, heap gauges)
	// and the build-info gauge. Registration is idempotent, so sharing a
	// Set across engines is fine.
	obs.RegisterRuntime(r)
	obs.RegisterBuildInfo(r)
	eo := &engineObs{
		set:     set,
		decider: map[string]*deciderObs{},
		censusRate: r.Gauge("lcl_census_entries_per_second",
			"Census classification throughput at the last progress tick (orbit representatives per second when deduplicating)."),
		checkpoint: r.Histogram("lcl_jobs_checkpoint_seconds",
			"Snapshot checkpoint duration in seconds.", nil),
		batch: r.Histogram("lcl_engine_batch_size",
			"ClassifyBatch request sizes.", obs.SizeBuckets),
		batchDedup: r.Histogram("lcl_engine_batch_dedup_ratio",
			"Per-batch fraction of exact-fingerprint items resolved by intra-batch dedup.",
			ratioBuckets),
	}
	tierRate := r.HistogramVec("lcl_engine_batch_tier_hit_rate",
		"Per-batch fraction of the deduplicated key set served by each read tier.",
		ratioBuckets, "tier")
	eo.batchSealedRate = tierRate.With("sealed")
	eo.batchMemoRate = tierRate.With("memo")
	batchItems := r.CounterVec("lcl_engine_batch_items_total",
		"Batch items by resolution tier.", "tier")
	eo.batchItemsSealed = batchItems.With("sealed")
	eo.batchItemsMemo = batchItems.With("memo")
	eo.batchItemsComputed = batchItems.With("computed")
	eo.batchItemsCoalesced = batchItems.With("coalesced")
	eo.batchItemsInexact = batchItems.With("inexact")
	eo.batchItemsError = batchItems.With("error")
	latency := r.HistogramVec("lcl_engine_request_seconds",
		"Classification latency in seconds, by decider.", nil, "decider")
	hits := r.CounterVec("lcl_engine_cache_hits_total",
		"Requests served from the memo cache, by decider.", "decider")
	misses := r.CounterVec("lcl_engine_cache_misses_total",
		"Requests that computed (or coalesced onto a computation), by decider.", "decider")
	errors := r.CounterVec("lcl_engine_request_errors_total",
		"Requests that failed, by decider.", "decider")
	// Sealed-tier counters are registered even when no table is loaded,
	// so dashboards see stable (zero) series either way.
	sealedHits := r.CounterVec("lcl_engine_sealed_hits_total",
		"Requests served from the sealed landscape table, by decider.", "decider")
	sealedMisses := r.CounterVec("lcl_engine_sealed_misses_total",
		"Requests that missed the sealed landscape table and fell through, by decider.", "decider")
	for _, name := range deciders {
		eo.decider[name] = &deciderObs{
			latency:      latency.With(name),
			hits:         hits.With(name),
			misses:       misses.With(name),
			errors:       errors.With(name),
			sealedHits:   sealedHits.With(name),
			sealedMisses: sealedMisses.With(name),
		}
	}
	return eo
}

// finishObs registers the sampled families that read live engine state
// (called at the end of New, when the cache and job manager exist).
func (e *Engine) finishObs() {
	r := e.obs.set.Registry

	// Engine request counters: the source of truth stays the existing
	// /statsz atomics; /metricsz samples them.
	r.CollectCounters("lcl_engine_requests_total",
		"Classification requests served, by decider.", []string{"decider"},
		func(emit func([]string, float64)) {
			for name, c := range e.byDecider {
				emit([]string{name}, float64(c.Load()))
			}
		})
	r.CounterFunc("lcl_engine_errors_total",
		"Classification requests that failed (all deciders plus rejects).",
		func() float64 { return float64(e.errors.Load()) })
	r.CounterFunc("lcl_engine_coalesced_total",
		"Requests that coalesced onto an identical in-flight computation.",
		func() float64 { return float64(e.coalesced.Load()) })
	r.CounterFunc("lcl_engine_unknown_mode_rejects_total",
		"Requests naming no registered decider.",
		func() float64 { return float64(e.unknownMode.Load()) })
	r.GaugeFunc("lcl_engine_workers", "Batch worker pool size.",
		func() float64 { return float64(e.workers) })
	r.GaugeFunc("lcl_engine_cached_censuses",
		"Census results held for instant serving.",
		func() float64 {
			e.censusMu.Lock()
			defer e.censusMu.Unlock()
			return float64(len(e.censuses) + len(e.pathCensuses))
		})

	// Memo cache: global counters plus per-shard balance.
	r.CounterFunc("lcl_memo_hits_total", "Memo cache hits.",
		func() float64 { return float64(e.cache.Stats().Hits) })
	r.CounterFunc("lcl_memo_misses_total", "Memo cache misses.",
		func() float64 { return float64(e.cache.Stats().Misses) })
	r.CounterFunc("lcl_memo_evictions_total", "Memo cache evictions.",
		func() float64 { return float64(e.cache.Stats().Evictions) })
	r.CounterFunc("lcl_memo_puts_total", "Memo cache puts.",
		func() float64 { return float64(e.cache.Stats().Puts) })
	r.GaugeFunc("lcl_memo_size", "Memo cache entries.",
		func() float64 { return float64(e.cache.Len()) })
	shardFamily := func(name, help string, field func(memo.ShardStat) float64) {
		r.CollectGauges(name, help, []string{"shard"},
			func(emit func([]string, float64)) {
				for i, s := range e.cache.ShardStats() {
					emit([]string{strconv.Itoa(i)}, field(s))
				}
			})
	}
	shardFamily("lcl_memo_shard_hits", "Memo cache hits, by shard.",
		func(s memo.ShardStat) float64 { return float64(s.Hits) })
	shardFamily("lcl_memo_shard_misses", "Memo cache misses, by shard.",
		func(s memo.ShardStat) float64 { return float64(s.Misses) })
	shardFamily("lcl_memo_shard_evictions", "Memo cache evictions, by shard.",
		func(s memo.ShardStat) float64 { return float64(s.Evictions) })
	shardFamily("lcl_memo_shard_size", "Memo cache entries, by shard.",
		func(s memo.ShardStat) float64 { return float64(s.Size) })
	// Batched-lookup traffic: global GetBatch counters plus per-shard
	// balance (how evenly batch probes spread across shards).
	r.CounterFunc("lcl_memo_batch_calls_total", "Memo cache GetBatch calls.",
		func() float64 { return float64(e.cache.Stats().BatchCalls) })
	r.CounterFunc("lcl_memo_batch_keys_total", "Keys probed via memo cache GetBatch.",
		func() float64 { return float64(e.cache.Stats().BatchKeys) })
	r.CounterFunc("lcl_memo_batch_hits_total", "Keys hit via memo cache GetBatch.",
		func() float64 { return float64(e.cache.Stats().BatchHits) })
	shardFamily("lcl_memo_shard_batch_gets", "Keys probed via GetBatch, by shard.",
		func(s memo.ShardStat) float64 { return float64(s.BatchGets) })
	shardFamily("lcl_memo_shard_batch_hits", "Keys hit via GetBatch, by shard.",
		func(s memo.ShardStat) float64 { return float64(s.BatchHits) })
	memoBatch := r.Histogram("lcl_memo_batch_size",
		"GetBatch lookup sizes (census prefills and batch serving).", obs.SizeBuckets)
	e.cache.SetBatchObserver(func(keys, hits int) {
		memoBatch.Observe(float64(keys))
	})

	// Jobs: queue depth, running workers, per-state population.
	r.GaugeFunc("lcl_jobs_queue_depth", "Background jobs waiting in the queue.",
		func() float64 { return float64(e.jobMgr.Counts().QueueDepth) })
	r.GaugeFunc("lcl_jobs_running", "Background jobs currently executing.",
		func() float64 { return float64(e.jobMgr.Counts().Running) })
	r.CollectGauges("lcl_jobs", "Background jobs, by lifecycle state.", []string{"state"},
		func(emit func([]string, float64)) {
			counts := e.jobMgr.Counts().ByState
			// Emit every state, even at zero, so dashboards see stable
			// series.
			for _, st := range []jobs.State{jobs.StatePending, jobs.StateRunning,
				jobs.StateDone, jobs.StateFailed, jobs.StateCancelled, jobs.StateInterrupted} {
				emit([]string{string(st)}, float64(counts[st]))
			}
		})

	// Sealed landscape table: size and age gauges (0 when no table is
	// loaded; SealedTable accessors are nil-receiver safe).
	r.GaugeFunc("lcl_sealed_entries",
		"Precomputed verdicts in the loaded sealed landscape table (0 when none is loaded).",
		func() float64 { return float64(e.sealed.Len()) })
	r.GaugeFunc("lcl_sealed_bytes",
		"On-disk size of the loaded sealed landscape table in bytes.",
		func() float64 { return float64(e.sealed.SizeBytes()) })
	r.GaugeFunc("lcl_sealed_age_seconds",
		"Seconds since the loaded sealed landscape table was built (0 when none is loaded).",
		func() float64 {
			created := e.sealed.CreatedUnix()
			if created <= 0 {
				return 0
			}
			if age := time.Since(time.Unix(created, 0)).Seconds(); age > 0 {
				return age
			}
			return 0
		})

	// Snapshot age mirrors /statsz's AgeSeconds.
	r.GaugeFunc("lcl_snapshot_age_seconds",
		"Seconds since the newest snapshot state (0 when none exists).",
		func() float64 {
			e.censusMu.Lock()
			defer e.censusMu.Unlock()
			if e.snapTime.IsZero() {
				return 0
			}
			if age := time.Since(e.snapTime).Seconds(); age > 0 {
				return age
			}
			return 0
		})
}

// observeRequest records one served request's latency and memo outcome
// on the hot path. No-op when the engine is uninstrumented or the
// decider was registered after construction.
func (e *Engine) observeRequest(decider string, start time.Time, hit bool, err error) {
	if e.obs == nil {
		return
	}
	do := e.obs.decider[decider]
	if do == nil {
		return
	}
	do.latency.Observe(time.Since(start).Seconds())
	switch {
	case err != nil:
		do.errors.Inc()
	case hit:
		do.hits.Inc()
	default:
		do.misses.Inc()
	}
}

// observeSealed records one sealed-tier lookup outcome. No-op when the
// engine is uninstrumented or the decider was registered after
// construction.
func (e *Engine) observeSealed(decider string, hit bool) {
	if e.obs == nil {
		return
	}
	do := e.obs.decider[decider]
	if do == nil {
		return
	}
	if hit {
		do.sealedHits.Inc()
	} else {
		do.sealedMisses.Inc()
	}
}

// censusProgress wraps a census progress callback with the throughput
// gauge: each tick publishes entries-classified-per-second since the
// run started. Returns progress unchanged on an uninstrumented engine.
func (e *Engine) censusProgress(progress func(done, total int)) func(done, total int) {
	if e.obs == nil {
		return progress
	}
	start := time.Now()
	rate := e.obs.censusRate
	return func(done, total int) {
		if el := time.Since(start).Seconds(); el > 0 && done > 0 {
			rate.Set(float64(done) / el)
		}
		if progress != nil {
			progress(done, total)
		}
	}
}

// Obs returns the engine's observability set (registry, trace ring,
// logger), or nil when the engine was built with DisableObs.
func (e *Engine) Obs() *obs.Set {
	if e.obs == nil {
		return nil
	}
	return e.obs.set
}
