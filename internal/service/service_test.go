package service

import (
	"sync"
	"testing"

	"repro/internal/classify"
	"repro/internal/lcl"
	"repro/internal/problems"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(Config{Workers: 4, CacheShards: 4, CacheCapacity: 1024})
	t.Cleanup(e.Close)
	return e
}

// relabeled3Coloring is 3-coloring with the color alphabet rotated — a
// distinct *lcl.Problem value that is label-isomorphic to
// problems.Coloring(3, 2).
func relabeled3Coloring() *lcl.Problem {
	b := lcl.NewBuilder("3-coloring-rotated", nil, []string{"3", "1", "2"})
	for _, c := range []string{"1", "2", "3"} {
		b.Node(c)
		b.Node(c, c)
		for _, d := range []string{"1", "2", "3"} {
			if c != d {
				b.Edge(c, d)
			}
		}
	}
	return b.MustBuild()
}

func TestClassifyCycles(t *testing.T) {
	e := newTestEngine(t)
	resp, err := e.Classify(Request{Problem: problems.Coloring(3, 2), Mode: ModeCycles})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cycles == nil || resp.Cycles.Class != classify.LogStar {
		t.Fatalf("3-coloring on cycles: %+v", resp.Cycles)
	}
	if resp.CacheHit || resp.Coalesced {
		t.Fatalf("first request served from cache: %+v", resp)
	}
}

// TestCacheHitAcrossIsomorphs: a relabeled problem hits the cache entry
// of its isomorph — the point of canonical keys.
func TestCacheHitAcrossIsomorphs(t *testing.T) {
	e := newTestEngine(t)
	first, err := e.Classify(Request{Problem: problems.Coloring(3, 2), Mode: ModeCycles})
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Classify(Request{Problem: relabeled3Coloring(), Mode: ModeCycles})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("isomorphic problem missed the cache")
	}
	if second.Fingerprint != first.Fingerprint {
		t.Fatalf("fingerprints differ across isomorphs: %x vs %x", first.Fingerprint, second.Fingerprint)
	}
	if second.Cycles.Class != first.Cycles.Class {
		t.Fatal("classes differ across isomorphs")
	}
	if st := e.Stats(); st.Cache.Hits == 0 {
		t.Fatalf("stats recorded no cache hit: %+v", st)
	}
}

func TestClassifyTrees(t *testing.T) {
	e := newTestEngine(t)
	resp, err := e.Classify(Request{Problem: problems.Trivial(2), Mode: ModeTrees})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trees == nil || !resp.Trees.Constant {
		t.Fatalf("trivial problem on trees: %+v", resp.Trees)
	}
}

func TestClassifyPathsInputs(t *testing.T) {
	e := newTestEngine(t)
	resp, err := e.Classify(Request{Problem: problems.Coloring(3, 2), Mode: ModePathsInputs})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Paths == nil || !resp.Paths.SolvableAllInputs {
		t.Fatalf("3-coloring on paths: %+v", resp.Paths)
	}
}

func TestClassifySynthesize(t *testing.T) {
	e := newTestEngine(t)
	// 3-coloring needs symmetry breaking: no constant-round algorithm.
	resp, err := e.Classify(Request{Problem: problems.Coloring(3, 2), Mode: ModeSynthesize, MaxRadius: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Synth == nil || resp.Synth.Found {
		t.Fatalf("3-coloring synthesized at radius <= 1: %+v", resp.Synth)
	}
	// The trivial problem synthesizes at radius 0.
	resp, err = e.Classify(Request{Problem: problems.Trivial(2), Mode: ModeSynthesize})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Synth == nil || !resp.Synth.Found || resp.Synth.Radius != 0 {
		t.Fatalf("trivial synthesis: %+v", resp.Synth)
	}
}

func TestClassifyErrors(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Classify(Request{Problem: problems.Coloring(3, 2), Mode: "nonsense"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := e.Classify(Request{Mode: ModeCycles}); err == nil {
		t.Fatal("nil problem accepted")
	}
	// Cycles rejects problems with inputs.
	withInputs := lcl.NewBuilder("inputful", []string{"x", "y"}, []string{"A"}).
		Node("A", "A").Edge("A", "A").Allow("x", "A").Allow("y", "A").MustBuild()
	if _, err := e.Classify(Request{Problem: withInputs, Mode: ModeCycles}); err == nil {
		t.Fatal("cycles accepted an input-labeled problem")
	}
	if st := e.Stats(); st.Errors == 0 {
		t.Fatalf("no errors recorded: %+v", st)
	}
}

// TestBatch: positional results, mixed modes, and cache effectiveness
// for duplicate entries.
func TestBatch(t *testing.T) {
	e := newTestEngine(t)
	reqs := []Request{
		{Problem: problems.Coloring(3, 2), Mode: ModeCycles},
		{Problem: problems.Trivial(2), Mode: ModeCycles},
		{Problem: problems.Coloring(3, 2), Mode: ModeCycles}, // duplicate of [0]
		{Problem: problems.Coloring(3, 2), Mode: ModePathsInputs},
	}
	items := e.ClassifyBatch(reqs)
	if len(items) != 4 {
		t.Fatalf("%d items", len(items))
	}
	for i, item := range items {
		if item.Err != nil {
			t.Fatalf("item %d: %v", i, item.Err)
		}
	}
	if items[0].Response.Cycles.Class != classify.LogStar {
		t.Fatalf("item 0: %+v", items[0].Response.Cycles)
	}
	if items[1].Response.Cycles.Class != classify.Constant {
		t.Fatalf("item 1: %+v", items[1].Response.Cycles)
	}
	if items[3].Response.Paths == nil {
		t.Fatalf("item 3 lost its mode: %+v", items[3].Response)
	}
	// Of the two identical requests exactly one computed; the other was
	// served by cache or coalesced (scheduling decides which slot).
	computed := 0
	for _, i := range []int{0, 2} {
		if !items[i].Response.CacheHit && !items[i].Response.Coalesced {
			computed++
		}
	}
	if computed != 1 {
		t.Fatalf("%d computations for duplicate batch entries", computed)
	}
}

// TestSingleflight: concurrent identical requests against a cold cache
// produce exactly one computation; the rest coalesce or hit the cache.
func TestSingleflight(t *testing.T) {
	e := newTestEngine(t)
	const n = 16
	var wg sync.WaitGroup
	resps := make([]*Response, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// ModeTrees is slow enough (round elimination) for overlap.
			resps[i], errs[i] = e.Classify(Request{Problem: problems.Coloring(3, 2), Mode: ModeTrees})
		}(i)
	}
	wg.Wait()
	computed := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !resps[i].CacheHit && !resps[i].Coalesced {
			computed++
		}
	}
	if computed != 1 {
		t.Fatalf("%d computations for %d identical concurrent requests", computed, n)
	}
	if st := e.Stats(); st.Cache.Puts != 1 {
		t.Fatalf("expected a single cache fill: %+v", st.Cache)
	}
}

// TestInexactFormBypassesCache: a problem whose canonical search blows
// the permutation budget (9 interchangeable colors: 9! > DefaultMaxPerms)
// must be computed every time — caching an inexact fingerprint could
// serve a refinement-indistinguishable non-isomorph the wrong answer.
func TestInexactFormBypassesCache(t *testing.T) {
	e := newTestEngine(t)
	p := problems.Coloring(9, 2)
	for i := 0; i < 2; i++ {
		resp, err := e.Classify(Request{Problem: p, Mode: ModeCycles})
		if err != nil {
			t.Fatal(err)
		}
		if resp.CacheHit || resp.Coalesced {
			t.Fatalf("request %d served from cache despite inexact canonical form", i)
		}
		if resp.Cycles == nil || resp.Cycles.Class != classify.LogStar {
			t.Fatalf("9-coloring on cycles: %+v", resp.Cycles)
		}
	}
	if st := e.Stats(); st.Cache.Puts != 0 {
		t.Fatalf("inexact result was cached: %+v", st.Cache)
	}
}

func TestEngineCensus(t *testing.T) {
	e := newTestEngine(t)
	c, err := e.Census(2, true)
	if err != nil {
		t.Fatal(err)
	}
	if !c.GapHolds() {
		t.Fatal("gap violated")
	}
	// Census warms the cache for subsequent ModeCycles traffic on any
	// isomorph of a census problem — here a hand-built two-letter
	// problem (all node configs, monochromatic edges) whose labels are
	// spelled differently from the census normal form.
	hand := lcl.NewBuilder("hand-ising", nil, []string{"↑", "↓"}).
		Node("↑", "↑").Node("↑", "↓").Node("↓", "↓").
		Edge("↑", "↑").Edge("↓", "↓").MustBuild()
	resp, err := e.Classify(Request{Problem: hand, Mode: ModeCycles})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("census did not warm the classify cache")
	}
}
