package service

import (
	"context"
	"sync"
	"testing"

	"repro/internal/classify"
	"repro/internal/decide"
	"repro/internal/lcl"
	"repro/internal/problems"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(Config{Workers: 4, CacheShards: 4, CacheCapacity: 1024})
	t.Cleanup(e.Close)
	return e
}

// relabeled3Coloring is 3-coloring with the color alphabet rotated — a
// distinct *lcl.Problem value that is label-isomorphic to
// problems.Coloring(3, 2).
func relabeled3Coloring() *lcl.Problem {
	b := lcl.NewBuilder("3-coloring-rotated", nil, []string{"3", "1", "2"})
	for _, c := range []string{"1", "2", "3"} {
		b.Node(c)
		b.Node(c, c)
		for _, d := range []string{"1", "2", "3"} {
			if c != d {
				b.Edge(c, d)
			}
		}
	}
	return b.MustBuild()
}

// rootedTwoColoring is the rooted request every test that needs one
// uses: proper 2-coloring of the binary tree.
func rootedTwoColoring() *decide.RootedProblem {
	return &decide.RootedProblem{
		Name:   "rooted-2col",
		Delta:  2,
		Labels: []string{"a", "b"},
		Configs: []decide.RootedConfig{
			{Parent: "a", Children: []string{"b", "b"}},
			{Parent: "b", Children: []string{"a", "a"}},
		},
	}
}

func TestClassifyCycles(t *testing.T) {
	e := newTestEngine(t)
	resp, err := e.Classify(Request{Problem: problems.Coloring(3, 2), Mode: "cycles"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cycles() == nil || resp.Cycles().Class != classify.LogStar {
		t.Fatalf("3-coloring on cycles: %+v", resp.Cycles())
	}
	if resp.Class != decide.LogStar {
		t.Fatalf("lattice class: %v", resp.Class)
	}
	if resp.CacheHit || resp.Coalesced {
		t.Fatalf("first request served from cache: %+v", resp)
	}
}

// TestCacheHitAcrossIsomorphs: a relabeled problem hits the cache entry
// of its isomorph — the point of canonical keys.
func TestCacheHitAcrossIsomorphs(t *testing.T) {
	e := newTestEngine(t)
	first, err := e.Classify(Request{Problem: problems.Coloring(3, 2), Mode: "cycles"})
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Classify(Request{Problem: relabeled3Coloring(), Mode: "cycles"})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("isomorphic problem missed the cache")
	}
	if second.Fingerprint != first.Fingerprint {
		t.Fatalf("fingerprints differ across isomorphs: %x vs %x", first.Fingerprint, second.Fingerprint)
	}
	if second.Cycles().Class != first.Cycles().Class {
		t.Fatal("classes differ across isomorphs")
	}
	if st := e.Stats(); st.Cache.Hits == 0 {
		t.Fatalf("stats recorded no cache hit: %+v", st)
	}
}

func TestClassifyTrees(t *testing.T) {
	e := newTestEngine(t)
	resp, err := e.Classify(Request{Problem: problems.Trivial(2), Mode: "trees"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trees() == nil || !resp.Trees().Constant {
		t.Fatalf("trivial problem on trees: %+v", resp.Trees())
	}
	if resp.Class != decide.Constant {
		t.Fatalf("lattice class: %v", resp.Class)
	}
}

func TestClassifyPathsInputs(t *testing.T) {
	e := newTestEngine(t)
	resp, err := e.Classify(Request{Problem: problems.Coloring(3, 2), Mode: "paths-inputs"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Paths() == nil || !resp.Paths().SolvableAllInputs {
		t.Fatalf("3-coloring on paths: %+v", resp.Paths())
	}
}

func TestClassifySynthesize(t *testing.T) {
	e := newTestEngine(t)
	// 3-coloring needs symmetry breaking: no constant-round algorithm.
	resp, err := e.Classify(Request{Problem: problems.Coloring(3, 2), Mode: "synthesize", MaxRadius: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Synth() == nil || resp.Synth().Found {
		t.Fatalf("3-coloring synthesized at radius <= 1: %+v", resp.Synth())
	}
	// The trivial problem synthesizes at radius 0.
	resp, err = e.Classify(Request{Problem: problems.Trivial(2), Mode: "synthesize"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Synth() == nil || !resp.Synth().Found || resp.Synth().Radius != 0 {
		t.Fatalf("trivial synthesis: %+v", resp.Synth())
	}
	if resp.Class != decide.Constant {
		t.Fatalf("lattice class: %v", resp.Class)
	}
}

func TestClassifyRooted(t *testing.T) {
	e := newTestEngine(t)
	resp, err := e.Classify(Request{Mode: "rooted", Rooted: rootedTwoColoring()})
	if err != nil {
		t.Fatal(err)
	}
	v := resp.Rooted()
	if v == nil || !v.SolvableEverywhere || v.ConstantAnon {
		t.Fatalf("rooted 2-coloring: %+v", v)
	}
	if resp.Class != decide.Unknown {
		t.Fatalf("lattice class: %v", resp.Class)
	}
	// Identical spec, second call: cache hit.
	resp, err = e.Classify(Request{Mode: "rooted", Rooted: rootedTwoColoring()})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("identical rooted request missed the cache")
	}
	// Rooted requests without a spec are rejected.
	if _, err := e.Classify(Request{Mode: "rooted"}); err == nil {
		t.Fatal("rooted request without a spec accepted")
	}
}

func TestClassifyGrid(t *testing.T) {
	e := newTestEngine(t)
	resp, err := e.Classify(Request{Problem: problems.ConsistentOrientation(), Mode: "grid", Dims: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Class != decide.Constant || resp.Grid() == nil || !resp.Grid().Exact {
		t.Fatalf("consistent orientation on the 1-torus: %v %+v", resp.Class, resp.Grid())
	}
	// Different dims are different memo domains: no false sharing.
	resp2, err := e.Classify(Request{Problem: problems.ConsistentOrientation(), Mode: "grid", Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.CacheHit {
		t.Fatal("dims=2 request hit the dims=1 cache entry")
	}
	if resp2.Grid().Dims != 2 {
		t.Fatalf("dims: %+v", resp2.Grid())
	}
}

func TestClassifyErrors(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Classify(Request{Problem: problems.Coloring(3, 2), Mode: "nonsense"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := e.Classify(Request{Mode: "cycles"}); err == nil {
		t.Fatal("nil problem accepted")
	}
	// Cycles rejects problems with inputs.
	withInputs := lcl.NewBuilder("inputful", []string{"x", "y"}, []string{"A"}).
		Node("A", "A").Edge("A", "A").Allow("x", "A").Allow("y", "A").MustBuild()
	if _, err := e.Classify(Request{Problem: withInputs, Mode: "cycles"}); err == nil {
		t.Fatal("cycles accepted an input-labeled problem")
	}
	if st := e.Stats(); st.Errors == 0 {
		t.Fatalf("no errors recorded: %+v", st)
	}
}

// TestUnknownModeCounter: rejected modes land in their own counter, not
// in any decider's bucket.
func TestUnknownModeCounter(t *testing.T) {
	e := newTestEngine(t)
	for i := 0; i < 3; i++ {
		if _, err := e.Classify(Request{Problem: problems.Trivial(2), Mode: "oracle"}); err == nil {
			t.Fatal("unknown mode accepted")
		}
	}
	st := e.Stats()
	if st.UnknownModeRejects != 3 {
		t.Fatalf("unknown-mode rejects: %d", st.UnknownModeRejects)
	}
	if st.Requests != 0 {
		t.Fatalf("unknown modes counted as requests: %+v", st)
	}
	for name, n := range st.ByDecider {
		if n != 0 {
			t.Fatalf("unknown mode polluted the %q bucket: %d", name, n)
		}
	}
	if len(st.Deciders) != len(DefaultRegistry().Names()) {
		t.Fatalf("deciders list: %v", st.Deciders)
	}
}

// TestBatch: positional results, mixed modes, and cache effectiveness
// for duplicate entries.
func TestBatch(t *testing.T) {
	e := newTestEngine(t)
	reqs := []Request{
		{Problem: problems.Coloring(3, 2), Mode: "cycles"},
		{Problem: problems.Trivial(2), Mode: "cycles"},
		{Problem: problems.Coloring(3, 2), Mode: "cycles"}, // duplicate of [0]
		{Problem: problems.Coloring(3, 2), Mode: "paths-inputs"},
	}
	items := e.ClassifyBatch(reqs)
	if len(items) != 4 {
		t.Fatalf("%d items", len(items))
	}
	for i, item := range items {
		if item.Err != nil {
			t.Fatalf("item %d: %v", i, item.Err)
		}
	}
	if items[0].Response.Cycles().Class != classify.LogStar {
		t.Fatalf("item 0: %+v", items[0].Response.Cycles())
	}
	if items[1].Response.Cycles().Class != classify.Constant {
		t.Fatalf("item 1: %+v", items[1].Response.Cycles())
	}
	if items[3].Response.Paths() == nil {
		t.Fatalf("item 3 lost its mode: %+v", items[3].Response)
	}
	// Of the two identical requests exactly one computed; the other was
	// served by cache or coalesced (scheduling decides which slot).
	computed := 0
	for _, i := range []int{0, 2} {
		if !items[i].Response.CacheHit && !items[i].Response.Coalesced {
			computed++
		}
	}
	if computed != 1 {
		t.Fatalf("%d computations for duplicate batch entries", computed)
	}
}

// TestSingleflight: concurrent identical requests against a cold cache
// produce exactly one computation; the rest coalesce or hit the cache.
func TestSingleflight(t *testing.T) {
	e := newTestEngine(t)
	const n = 16
	var wg sync.WaitGroup
	resps := make([]*Response, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Trees is slow enough (round elimination) for overlap.
			resps[i], errs[i] = e.Classify(Request{Problem: problems.Coloring(3, 2), Mode: "trees"})
		}(i)
	}
	wg.Wait()
	computed := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !resps[i].CacheHit && !resps[i].Coalesced {
			computed++
		}
	}
	if computed != 1 {
		t.Fatalf("%d computations for %d identical concurrent requests", computed, n)
	}
	if st := e.Stats(); st.Cache.Puts != 1 {
		t.Fatalf("expected a single cache fill: %+v", st.Cache)
	}
}

// TestInexactFormBypassesCache: a problem whose canonical search blows
// the permutation budget (9 interchangeable colors: 9! > DefaultMaxPerms)
// must be computed every time — caching an inexact fingerprint could
// serve a refinement-indistinguishable non-isomorph the wrong answer.
func TestInexactFormBypassesCache(t *testing.T) {
	e := newTestEngine(t)
	p := problems.Coloring(9, 2)
	for i := 0; i < 2; i++ {
		resp, err := e.Classify(Request{Problem: p, Mode: "cycles"})
		if err != nil {
			t.Fatal(err)
		}
		if resp.CacheHit || resp.Coalesced {
			t.Fatalf("request %d served from cache despite inexact canonical form", i)
		}
		if resp.Cycles() == nil || resp.Cycles().Class != classify.LogStar {
			t.Fatalf("9-coloring on cycles: %+v", resp.Cycles())
		}
	}
	if st := e.Stats(); st.Cache.Puts != 0 {
		t.Fatalf("inexact result was cached: %+v", st.Cache)
	}
}

// TestWrapRejectsUnknownPayload: a payload the decider does not
// recognize is an explicit error, never a silently empty response.
func TestWrapRejectsUnknownPayload(t *testing.T) {
	e := newTestEngine(t)
	d, ok := e.registry.Get("cycles")
	if !ok {
		t.Fatal("cycles decider missing")
	}
	req := Request{Mode: "cycles", Problem: problems.Trivial(2)}
	if _, err := e.wrap(d, &req, 1, "not-a-result", false, false); err == nil {
		t.Fatal("unknown payload wrapped silently")
	}
	if st := e.Stats(); st.Errors == 0 {
		t.Fatal("wrap error not counted")
	}
}

func TestEngineCensus(t *testing.T) {
	e := newTestEngine(t)
	c, err := e.Census(2, true)
	if err != nil {
		t.Fatal(err)
	}
	if !c.GapHolds() {
		t.Fatal("gap violated")
	}
	// Census warms the cache for subsequent cycles traffic on any
	// isomorph of a census problem — here a hand-built two-letter
	// problem (all node configs, monochromatic edges) whose labels are
	// spelled differently from the census normal form.
	hand := lcl.NewBuilder("hand-ising", nil, []string{"↑", "↓"}).
		Node("↑", "↑").Node("↑", "↓").Node("↓", "↓").
		Edge("↑", "↑").Edge("↓", "↓").MustBuild()
	resp, err := e.Classify(Request{Problem: hand, Mode: "cycles"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("census did not warm the classify cache")
	}
}

// TestGridFingerprintIgnoresName: structurally identical grid requests
// share memo entries regardless of the problem's display name.
func TestGridFingerprintIgnoresName(t *testing.T) {
	e := newTestEngine(t)
	build := func(name string) *lcl.Problem {
		return lcl.NewBuilder(name, nil, []string{"a"}).
			Node("a", "a", "a", "a").Edge("a", "a").MustBuild()
	}
	first, err := e.Classify(Request{Problem: build("p1"), Mode: "grid", Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Classify(Request{Problem: build("p2"), Mode: "grid", Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	if first.Fingerprint != second.Fingerprint || !second.CacheHit {
		t.Fatalf("renamed grid problem missed the cache: %x vs %x, hit=%v",
			first.Fingerprint, second.Fingerprint, second.CacheHit)
	}
}

// TestLateRegisteredDeciderServesWithoutPanic: registering a decider
// after engine construction is discouraged (no stats bucket, no census
// job) but must serve requests instead of dereferencing a nil counter.
func TestLateRegisteredDeciderServesWithoutPanic(t *testing.T) {
	r := DefaultRegistry()
	e := New(Config{Workers: 1, Registry: r})
	t.Cleanup(e.Close)
	r.MustRegister(stubLateDecider{})
	resp, err := e.Classify(Request{Mode: "late", Problem: problems.Trivial(2)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Class != decide.Unknown {
		t.Fatalf("late decider response: %+v", resp)
	}
	if _, ok := e.Stats().ByDecider["late"]; ok {
		t.Fatal("late decider unexpectedly acquired a stats bucket")
	}
}

// stubLateDecider is the minimal decider for the late-registration test.
type stubLateDecider struct{}

func (stubLateDecider) Name() string                          { return "late" }
func (stubLateDecider) Normalize(req *decide.Request) error   { return nil }
func (stubLateDecider) MemoDomain(req *decide.Request) string { return "late" }
func (stubLateDecider) Fingerprint(req *decide.Request) (uint64, bool, error) {
	return decide.LCLFingerprint(req.Problem)
}
func (stubLateDecider) Compute(ctx context.Context, req *decide.Request) (any, error) {
	return &struct{ OK bool }{true}, nil
}
func (stubLateDecider) WrapPayload(payload any) (*decide.Verdict, error) {
	return &decide.Verdict{Class: decide.Unknown, Detail: payload}, nil
}
