// HTTP/JSON transport for the classification engine: the handlers behind
// cmd/lclserver. Problem payloads use the symbolic JSON codec of
// internal/lcl (label names, self-describing, stable under reordering),
// so any problem the library can build round-trips through the API.
package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/decide"
	"repro/internal/lcl"
	"repro/internal/obs"
)

// NewHandler returns the lclserver route table:
//
//	POST /v1/classify        one classification request
//	POST /v1/classify/batch  positional batch over the worker pool
//	GET  /v1/census/{k}      the classified cycle-LCL census for k labels
//	GET  /v1/census/paths/{k}  the path-LCL solvability census
//	POST /v1/jobs            submit a background job (typed spec)
//	GET  /v1/jobs            list jobs, newest first
//	GET  /v1/jobs/{id}       one job's state, progress, and result
//	DELETE /v1/jobs/{id}     cancel a pending or running job
//	GET  /v1/jobs/{id}/events  job progress stream (Server-Sent Events)
//	POST /v1/admin/snapshot  persist the warm state to the snapshot path
//	GET  /healthz            liveness
//	GET  /statsz             engine + cache counters + snapshot age
//	GET  /metricsz           Prometheus text exposition of the registry
//	GET  /debug/tracez       recent request traces with per-stage spans
//
// On an instrumented engine (the default) the whole table is wrapped
// in obs.Middleware: every request is metered, carries a trace (spans
// recorded by ClassifyCtx appear in /debug/tracez), echoes its
// X-Request-Id, and slow requests are logged with a span breakdown.
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", e.handleClassify)
	mux.HandleFunc("POST /v1/classify/batch", e.handleBatch)
	mux.HandleFunc("GET /v1/census/{k}", e.handleCensus)
	mux.HandleFunc("GET /v1/census/paths/{k}", e.handlePathCensus)
	mux.HandleFunc("POST /v1/jobs", e.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", e.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", e.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", e.handleJobCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", e.handleJobEvents)
	mux.HandleFunc("POST /v1/admin/snapshot", e.handleSnapshotSave)
	mux.HandleFunc("GET /healthz", handleHealthz)
	mux.HandleFunc("GET /statsz", e.handleStatsz)
	set := e.Obs()
	if set == nil {
		return mux
	}
	mux.Handle("GET /metricsz", obs.MetricsHandler(set.Registry))
	mux.Handle("GET /debug/tracez", obs.TracezHandler(set.Traces))
	return obs.Middleware(mux, set)
}

// wireRequest is the JSON form of a Request. Exactly one of Problem
// (lcl codec) / Rooted carries the problem, matching the mode.
type wireRequest struct {
	Mode      string                `json:"mode"`
	Problem   json.RawMessage       `json:"problem,omitempty"`
	Rooted    *decide.RootedProblem `json:"rooted,omitempty"`
	MaxLevels int                   `json:"max_levels,omitempty"`
	MaxRadius int                   `json:"max_radius,omitempty"`
	Dims      int                   `json:"dims,omitempty"`
}

// wireResponse is the JSON form of a Response: serving metadata, the
// shared-lattice class, and the decider-specific detail — uniform
// across every registered decider, so adding one needs no transport
// changes.
type wireResponse struct {
	Problem     string `json:"problem,omitempty"`
	Mode        string `json:"mode"`
	Fingerprint string `json:"fingerprint,omitempty"`
	CacheHit    bool   `json:"cache_hit"`
	Coalesced   bool   `json:"coalesced,omitempty"`
	Sealed      bool   `json:"sealed,omitempty"`
	// Class is the verdict on the shared complexity-class lattice
	// ("unsolvable", "O(1)", "Θ(log* n)", "Θ(log n)", "Θ(n^{1/k})",
	// "Θ(n)", "unknown").
	Class string `json:"class,omitempty"`
	// Detail carries the decider-specific view (Decider.WrapPayload).
	Detail json.RawMessage `json:"detail,omitempty"`

	Error string `json:"error,omitempty"`
}

// decodeRequest parses one wire request into an engine Request; lcl
// problem payloads are validated by the lcl codec, rooted specs by the
// decider's Normalize.
func decodeRequest(wr *wireRequest) (Request, error) {
	var req Request
	req.Mode = wr.Mode
	req.MaxLevels = wr.MaxLevels
	req.MaxRadius = wr.MaxRadius
	req.Dims = wr.Dims
	req.Rooted = wr.Rooted
	if len(wr.Problem) > 0 {
		p := &lcl.Problem{}
		if err := json.Unmarshal(wr.Problem, p); err != nil {
			return req, fmt.Errorf("invalid problem: %v", err)
		}
		req.Problem = p
	}
	if req.Problem == nil && req.Rooted == nil {
		return req, fmt.Errorf("missing problem payload")
	}
	return req, nil
}

// requestName returns the display name of a request's problem.
func requestName(req *Request) string {
	switch {
	case req.Problem != nil:
		return req.Problem.Name
	case req.Rooted != nil:
		return req.Rooted.Name
	default:
		return ""
	}
}

// encodeResponse flattens an engine response for the wire. Detail types
// are service-defined and marshalable by construction; a marshal
// failure is a programming error, reported so callers can map it to a
// real error status instead of a 200 with a missing detail.
func encodeResponse(name string, resp *Response) (*wireResponse, error) {
	wr := &wireResponse{
		Problem:     name,
		Mode:        resp.Mode,
		Fingerprint: fmt.Sprintf("%016x", resp.Fingerprint),
		CacheHit:    resp.CacheHit,
		Coalesced:   resp.Coalesced,
		Sealed:      resp.Sealed,
		Class:       resp.Class.String(),
	}
	if resp.Detail != nil {
		raw, err := json.Marshal(resp.Detail)
		if err != nil {
			return nil, fmt.Errorf("encode %s detail: %v", resp.Mode, err)
		}
		wr.Detail = raw
	}
	return wr, nil
}

func (e *Engine) handleClassify(w http.ResponseWriter, r *http.Request) {
	tr := obs.TraceFrom(r.Context())
	var spanStart time.Time
	if tr != nil {
		spanStart = time.Now()
	}
	var wr wireRequest
	if err := json.NewDecoder(r.Body).Decode(&wr); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	req, err := decodeRequest(&wr)
	tr.Record("decode", spanStart)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := e.ClassifyCtx(r.Context(), req)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if tr != nil {
		spanStart = time.Now()
	}
	wresp, err := encodeResponse(requestName(&req), resp)
	tr.Record("encode", spanStart)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, wresp)
}

type wireBatchRequest struct {
	Requests []wireRequest `json:"requests"`
}

// wireBatchResponse documents the batch response shape. The handler
// streams it through a pooled buffer (see batchEncoder) rather than
// marshaling this struct; tests decode into it.
type wireBatchResponse struct {
	Results []*wireResponse `json:"results"`
	// Deduped counts items served by fanning out another item's result
	// (intra-batch duplicates by canonical fingerprint).
	Deduped int `json:"deduped,omitempty"`
}

// wireBatchLimitError is the structured 413 body for oversized batches.
type wireBatchLimitError struct {
	Error    string `json:"error"`
	MaxBatch int    `json:"max_batch"`
	Items    int    `json:"items"`
}

// batchEncoder is the pooled batch response writer: one buffer for the
// whole body and a detail-marshal cache keyed by detail pointer, so a
// dedup group's shared detail is marshaled once instead of per item.
type batchEncoder struct {
	buf     bytes.Buffer
	details map[any]json.RawMessage
}

var batchEncPool = sync.Pool{
	New: func() any { return &batchEncoder{details: map[any]json.RawMessage{}} },
}

// marshalDetail returns the wire bytes of a verdict detail, cached by
// pointer identity (all registered deciders return pointer-typed
// details, which intra-batch duplicates share).
func (be *batchEncoder) marshalDetail(mode string, detail any) (json.RawMessage, error) {
	if raw, ok := be.details[detail]; ok {
		return raw, nil
	}
	raw, err := json.Marshal(detail)
	if err != nil {
		return nil, fmt.Errorf("encode %s detail: %v", mode, err)
	}
	be.details[detail] = raw
	return raw, nil
}

func (e *Engine) handleBatch(w http.ResponseWriter, r *http.Request) {
	var wb wireBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&wb); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(wb.Requests) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if max := e.maxBatch; len(wb.Requests) > max {
		writeJSON(w, http.StatusRequestEntityTooLarge, wireBatchLimitError{
			Error:    fmt.Sprintf("batch of %d items exceeds the limit of %d", len(wb.Requests), max),
			MaxBatch: max,
			Items:    len(wb.Requests),
		})
		return
	}
	// Decode errors (including explicitly empty items — no problem
	// payload at all) keep their slot so results stay positional.
	// Duplicate raw problem payloads decode once and share one
	// *lcl.Problem, which lights up the engine's identity prefilter —
	// a literal duplicate item is never re-canonicalized.
	reqs := make([]Request, len(wb.Requests))
	decodeErrs := make([]error, len(wb.Requests))
	problems := map[string]*lcl.Problem{}
	for i := range wb.Requests {
		wr := &wb.Requests[i]
		if len(wr.Problem) > 0 {
			if p, ok := problems[string(wr.Problem)]; ok {
				reqs[i] = Request{
					Mode:      wr.Mode,
					Problem:   p,
					Rooted:    wr.Rooted,
					MaxLevels: wr.MaxLevels,
					MaxRadius: wr.MaxRadius,
					Dims:      wr.Dims,
				}
				continue
			}
		}
		reqs[i], decodeErrs[i] = decodeRequest(wr)
		if decodeErrs[i] == nil && reqs[i].Problem != nil {
			problems[string(wr.Problem)] = reqs[i].Problem
		}
	}
	valid := make([]Request, 0, len(reqs))
	pos := make([]int, 0, len(reqs))
	for i := range reqs {
		if decodeErrs[i] == nil {
			valid = append(valid, reqs[i])
			pos = append(pos, i)
		}
	}
	b := e.NewBatch()
	defer b.Release()
	items := b.Classify(r.Context(), valid)

	// Stream the response through the pooled encoder: one buffer write
	// per request instead of a per-item json.Marshal, with dedup groups
	// sharing one detail marshal.
	be := batchEncPool.Get().(*batchEncoder)
	defer func() {
		be.buf.Reset()
		clear(be.details)
		batchEncPool.Put(be)
	}()
	enc := json.NewEncoder(&be.buf)
	be.buf.WriteString(`{"results":[`)
	var wr wireResponse
	next := 0
	for i := range reqs {
		if i > 0 {
			be.buf.WriteByte(',')
		}
		wr = wireResponse{}
		if decodeErrs[i] != nil {
			wr.Mode = wb.Requests[i].Mode
			wr.Error = decodeErrs[i].Error()
		} else {
			j := next
			next++
			item := items[j]
			wr.Problem = requestName(&valid[j])
			wr.Mode = valid[j].Mode
			switch {
			case item.Err != nil:
				wr.Error = item.Err.Error()
			default:
				resp := item.Response
				wr.Fingerprint = fmt.Sprintf("%016x", resp.Fingerprint)
				wr.CacheHit = resp.CacheHit
				wr.Coalesced = resp.Coalesced
				wr.Sealed = resp.Sealed
				wr.Class = resp.Class.String()
				if resp.Detail != nil {
					raw, err := be.marshalDetail(resp.Mode, resp.Detail)
					if err != nil {
						// Positional: an encode failure stays in its slot
						// as an explicit item error.
						wr = wireResponse{Problem: wr.Problem, Mode: wr.Mode, Error: err.Error()}
					} else {
						wr.Detail = raw
					}
				}
			}
		}
		// Encode appends a newline after the value — legal JSON
		// whitespace inside the array.
		if err := enc.Encode(&wr); err != nil {
			httpError(w, http.StatusInternalServerError, "encode batch: %v", err)
			return
		}
	}
	be.buf.WriteByte(']')
	if d := b.Stats().Deduped; d > 0 {
		fmt.Fprintf(&be.buf, `,"deduped":%d`, d)
	}
	be.buf.WriteString("}\n")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(be.buf.Bytes())
}

// wireCensus summarizes a census for the wire: per-class counts rather
// than the full entry list (4096 raw problems at k = 3).
type wireCensus struct {
	K                  int                       `json:"k"`
	Dedup              bool                      `json:"dedup"`
	TotalProblems      int                       `json:"total_problems"`
	IsomorphismClasses int                       `json:"isomorphism_classes,omitempty"`
	Classes            map[string]wireClassCount `json:"classes"`
	GapHolds           bool                      `json:"gap_holds"`
}

type wireClassCount struct {
	Raw       int `json:"raw"`
	Canonical int `json:"canonical,omitempty"`
}

func (e *Engine) handleCensus(w http.ResponseWriter, r *http.Request) {
	k, err := strconv.Atoi(r.PathValue("k"))
	if err != nil || k < 1 || k > 3 {
		httpError(w, http.StatusBadRequest, "census k must be an integer in [1, 3]")
		return
	}
	dedup := true
	if v := r.URL.Query().Get("dedup"); v != "" {
		dedup, err = strconv.ParseBool(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "invalid dedup: %v", err)
			return
		}
	}
	c, err := e.Census(k, dedup)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	wc := wireCensus{
		K:        c.K,
		Dedup:    c.Dedup,
		Classes:  map[string]wireClassCount{},
		GapHolds: c.GapHolds(),
	}
	for cl, n := range c.RawByClass {
		wc.TotalProblems += n
		cc := wireClassCount{Raw: n}
		if dedup {
			cc.Canonical = c.ByClass[cl]
		}
		wc.Classes[cl.String()] = cc
	}
	if dedup {
		wc.IsomorphismClasses = len(c.Entries)
	}
	writeJSON(w, http.StatusOK, wc)
}

// wirePathCensus is the JSON form of a path census (encoding/json
// renders int-keyed maps with string keys).
type wirePathCensus struct {
	K              int         `json:"k"`
	TotalProblems  int         `json:"total_problems"`
	SolvableAll    int         `json:"solvable_all"`
	UnsolvableSome int         `json:"unsolvable_some"`
	ShortestBad    map[int]int `json:"shortest_bad,omitempty"`
}

func (e *Engine) handlePathCensus(w http.ResponseWriter, r *http.Request) {
	k, err := strconv.Atoi(r.PathValue("k"))
	if err != nil || k < 1 || k > 3 {
		httpError(w, http.StatusBadRequest, "path census k must be an integer in [1, 3]")
		return
	}
	c, err := e.PathCensus(k)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, wirePathCensus{
		K:              c.K,
		TotalProblems:  c.Total,
		SolvableAll:    c.SolvableAll,
		UnsolvableSome: c.UnsolvableSome,
		ShortestBad:    c.ShortestBad,
	})
}

func (e *Engine) handleSnapshotSave(w http.ResponseWriter, r *http.Request) {
	res, err := e.SaveSnapshot()
	if err != nil {
		// No configured path is an operator misconfiguration (409); a
		// failed write is a server fault (500).
		status := http.StatusInternalServerError
		if e.snapshotPath == "" {
			status = http.StatusConflict
		}
		httpError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (e *Engine) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, e.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
