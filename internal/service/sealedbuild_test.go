package service

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/classify"
	"repro/internal/lcl"
	"repro/internal/store"
)

const testSealCreated = 1754600000

func testFileSealConfig() SealConfig {
	cfg := testSealConfig()
	cfg.CreatedUnix = testSealCreated
	return cfg
}

// referenceSealBytes is the ground truth every sharded build is
// compared against: the in-memory build encoded by EncodeSealed.
func referenceSealBytes(t *testing.T) []byte {
	t.Helper()
	sealed, err := BuildSealed(testSealConfig())
	if err != nil {
		t.Fatal(err)
	}
	sealed.CreatedUnix = testSealCreated
	buf, err := store.EncodeSealed(sealed)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func readArtifact(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestBuildSealedFileMatchesInMemoryEncode: the streaming sharded file
// build and the in-memory EncodeSealed path are byte-identical.
func TestBuildSealedFileMatchesInMemoryEncode(t *testing.T) {
	want := referenceSealBytes(t)
	path := filepath.Join(t.TempDir(), "landscape.lclseal")
	res, err := BuildSealedFile(path, testFileSealConfig())
	if err != nil {
		t.Fatalf("BuildSealedFile: %v", err)
	}
	got := readArtifact(t, path)
	if string(got) != string(want) {
		t.Fatalf("file build differs from in-memory encode (%d vs %d bytes)", len(got), len(want))
	}
	if res.Bytes != int64(len(got)) {
		t.Errorf("result reports %d bytes, file has %d", res.Bytes, len(got))
	}
	if res.CreatedUnix != testSealCreated {
		t.Errorf("result created %d, want %d", res.CreatedUnix, testSealCreated)
	}
	if res.Shards == 0 || res.SkippedShards != 0 || res.Entries == 0 || len(res.Sections) != 4 {
		t.Errorf("implausible result: %+v", res)
	}
	if _, err := os.Stat(path + ".build"); !os.IsNotExist(err) {
		t.Errorf("build dir survived a successful build (stat err = %v)", err)
	}
	tbl, err := store.OpenSealedMapped(path)
	if err != nil {
		t.Fatalf("OpenSealedMapped of built artifact: %v", err)
	}
	defer tbl.Close()
	if tbl.Len() != res.Entries {
		t.Errorf("table has %d entries, result reports %d", tbl.Len(), res.Entries)
	}
}

// TestBuildSealedFileDeterministicAcrossWorkers is half the acceptance
// bar: worker count must never leak into the artifact bytes.
func TestBuildSealedFileDeterministicAcrossWorkers(t *testing.T) {
	want := referenceSealBytes(t)
	for _, workers := range []int{1, 4, 16} {
		cfg := testFileSealConfig()
		cfg.Workers = workers
		path := filepath.Join(t.TempDir(), "landscape.lclseal")
		if _, err := BuildSealedFile(path, cfg); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := readArtifact(t, path); string(got) != string(want) {
			t.Errorf("workers=%d: artifact differs from the single-threaded reference", workers)
		}
	}
}

// TestBuildSealedFileResumeKillAtEveryCheckpoint is the other half: a
// build killed after every checkpoint in turn — shard N completes, the
// process dies, a -resume build picks up — must converge to the exact
// single-threaded bytes, re-classifying only lost work.
func TestBuildSealedFileResumeKillAtEveryCheckpoint(t *testing.T) {
	want := referenceSealBytes(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "landscape.lclseal")

	cfg := testFileSealConfig()
	cfg.Workers = 1
	probe, err := NewSealFileBuild(filepath.Join(t.TempDir(), "probe.lclseal"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	totalShards := probe.Shards()
	if totalShards < 4 {
		t.Fatalf("test config plans only %d shards; the kill schedule needs more", totalShards)
	}

	// Chain of killed sessions: session i completes exactly one new
	// shard, then cancels — exercising resume-of-resume at every
	// checkpoint boundary until the final session finishes the build.
	done := 0
	for session := 0; done < totalShards; session++ {
		if session > totalShards {
			t.Fatalf("made no progress after %d sessions (done=%d of %d)", session, done, totalShards)
		}
		scfg := testFileSealConfig()
		scfg.Workers = 1
		scfg.Resume = session > 0
		ctx, cancel := context.WithCancel(context.Background())
		scfg.Ctx = ctx
		var fresh, skipped atomic.Int64
		scfg.ShardDone = func(ev SealShardEvent) {
			if ev.Skipped {
				skipped.Add(1)
				return
			}
			if fresh.Add(1) == 1 && done+1 < totalShards {
				cancel() // the "kill": no further shards may start
			}
		}
		res, err := BuildSealedFile(path, scfg)
		cancel()
		if done+int(fresh.Load()) < totalShards {
			if err == nil {
				t.Fatalf("session %d: build completed despite the kill (done=%d)", session, done)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("session %d: err = %v, want context.Canceled", session, err)
			}
		} else {
			if err != nil {
				t.Fatalf("final session %d: %v", session, err)
			}
			if res.SkippedShards != int(skipped.Load()) || res.SkippedShards != done {
				t.Errorf("final session: skipped %d shards, want %d", res.SkippedShards, done)
			}
		}
		if int(skipped.Load()) != done {
			t.Errorf("session %d: resumed %d shards from disk, want %d", session, skipped.Load(), done)
		}
		done += int(fresh.Load())
	}
	if got := readArtifact(t, path); string(got) != string(want) {
		t.Fatal("kill-and-resume chain produced different bytes than an uninterrupted build")
	}
}

// TestBuildSealedFileResumeSkipsCompletedClassification proves resume
// does not silently re-classify completed shards: after a full cycles
// section survives the kill, the classifier seam sees no further
// cycle invocations.
func TestBuildSealedFileResumeSkipsCompletedClassification(t *testing.T) {
	cfg := SealConfig{CycleKs: []int{2}, CreatedUnix: testSealCreated, Workers: 1}
	path := filepath.Join(t.TempDir(), "landscape.lclseal")
	if _, err := BuildSealedFile(path, cfg); err != nil {
		t.Fatal(err)
	}
	want := readArtifact(t, path)

	// Build again into the same (now recreated) build dir, killing
	// after the first shard; then resume with a counting classifier.
	path2 := filepath.Join(t.TempDir(), "landscape.lclseal")
	kcfg := cfg
	ctx, cancel := context.WithCancel(context.Background())
	kcfg.Ctx = ctx
	kcfg.ShardDone = func(ev SealShardEvent) { cancel() }
	if _, err := BuildSealedFile(path2, kcfg); err == nil {
		t.Fatal("killed build reported success")
	}
	cancel()

	var calls atomic.Int64
	orig := sealClassifyCycles
	sealClassifyCycles = func(p *lcl.Problem) (*classify.Result, error) {
		calls.Add(1)
		return orig(p)
	}
	defer func() { sealClassifyCycles = orig }()

	rcfg := cfg
	rcfg.Resume = true
	res, err := BuildSealedFile(path2, rcfg)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res.SkippedShards == 0 {
		t.Error("resume re-ran every shard; expected recovered runs")
	}
	full := 0
	for _, sec := range res.Sections {
		full += sec.Entries
	}
	if int(calls.Load()) >= full {
		t.Errorf("resume classified %d problems of %d total; completed shards were not skipped", calls.Load(), full)
	}
	if got := readArtifact(t, path2); string(got) != string(want) {
		t.Fatal("resumed artifact differs from uninterrupted build")
	}
}

func TestBuildSealedFileResumeRejectsConfigChange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "landscape.lclseal")
	cfg := SealConfig{CycleKs: []int{2}, CreatedUnix: testSealCreated, Workers: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cfg.Ctx = ctx
	cfg.ShardDone = func(SealShardEvent) { cancel() }
	if _, err := BuildSealedFile(path, cfg); err == nil {
		t.Fatal("killed build reported success")
	}
	cancel()

	other := SealConfig{CycleKs: []int{1, 2}, Resume: true}
	if _, err := BuildSealedFile(path, other); err == nil || !strings.Contains(err.Error(), "different seal configuration") {
		t.Fatalf("err = %v, want plan-mismatch rejection", err)
	}
}

// TestBuildSealedFileResumePreservesCreatedStamp: the resumed build
// must keep the original header timestamp even if the caller passes a
// different one, or byte-identity would silently break.
func TestBuildSealedFileResumePreservesCreatedStamp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "landscape.lclseal")
	cfg := SealConfig{CycleKs: []int{2}, CreatedUnix: testSealCreated, Workers: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cfg.Ctx = ctx
	cfg.ShardDone = func(SealShardEvent) { cancel() }
	if _, err := BuildSealedFile(path, cfg); err == nil {
		t.Fatal("killed build reported success")
	}
	cancel()

	rcfg := SealConfig{CycleKs: []int{2}, CreatedUnix: 42, Resume: true, Workers: 1}
	res, err := BuildSealedFile(path, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CreatedUnix != testSealCreated {
		t.Fatalf("resumed build stamped %d, want the manifest's %d", res.CreatedUnix, testSealCreated)
	}
	tbl, err := store.LoadSealed(path)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.CreatedUnix() != testSealCreated {
		t.Fatalf("artifact header stamped %d, want %d", tbl.CreatedUnix(), testSealCreated)
	}
}
