// Building the sealed landscape: the offline sweep behind `lcltool
// seal`. Each supported finite mask space is enumerated, classified
// once per orbit representative, and packaged as one store.Sealed
// section keyed under the exact memo domain the serving decider uses —
// so a sealed table built here answers production traffic without the
// deciders knowing it exists.
//
// Coverage semantics differ by space, mirroring each decider's
// fingerprint discipline:
//
//   - cycles and paths entries are keyed by canonical fingerprint; the
//     serving fingerprint of every orbit member resolves to its
//     representative's (FastCycleFingerprint / LCLFingerprint), so one
//     entry covers the whole isomorphism class.
//   - rooted and grid entries are keyed by the deciders' exact
//     (spelling-sensitive) fingerprints, so they cover requests phrased
//     in the census encoding — labels "l0".."l{k-1}" with the canonical
//     constraint spelling — which is what lcltool and the census jobs
//     emit.

package service

import (
	"context"
	"fmt"

	"repro/internal/classify"
	"repro/internal/enumerate"
	"repro/internal/grid"
	"repro/internal/rooted"
	"repro/internal/store"
)

// SealConfig selects which mask spaces BuildSealed sweeps. Empty slices
// skip the space entirely.
type SealConfig struct {
	// CycleKs lists cycle-census alphabet sizes to seal (each in
	// [1, canon.MaxOrbitK]).
	CycleKs []int
	// PathKs lists path-space alphabet sizes to seal (each in [1, 3]).
	PathKs []int
	// Rooted lists (delta, k) rooted spaces to seal (delta in [1, 3],
	// k in [1, 2]); RootedRadius bounds the anonymous synthesis search
	// (0 selects rooted.DefaultCensusRadius). The radius is part of the
	// memo domain, so a table sealed at one radius only serves requests
	// asking for it.
	Rooted       [][2]int
	RootedRadius int
	// GridKs lists mask-space alphabet sizes to seal for the
	// one-dimensional oriented torus (each in [1, canon.MaxOrbitK]).
	GridKs []int
	// Workers parallelizes the cycle-census sweeps (<= 0 selects
	// GOMAXPROCS).
	Workers int
	// Ctx, when non-nil, cancels the build between problems.
	Ctx context.Context
	// Progress, when non-nil, is called per section as classification
	// advances.
	Progress func(section string, done, total int)
}

// DefaultSealConfig covers every space the classifiers handle at
// interactive build cost: the full k <= 3 cycle and grid mask spaces,
// the k <= 2 path spaces, and all four supported rooted (delta, k)
// spaces at the default census radius.
func DefaultSealConfig() SealConfig {
	return SealConfig{
		CycleKs: []int{1, 2, 3},
		PathKs:  []int{1, 2},
		Rooted:  [][2]int{{1, 1}, {2, 1}, {3, 1}, {1, 2}, {2, 2}},
		GridKs:  []int{1, 2, 3},
	}
}

// BuildSealed classifies every orbit representative of the configured
// mask spaces and returns the sealed landscape ready for
// store.SaveSealed. The build is deterministic for a given config
// (section order follows the config, entries are fingerprint-sorted on
// encode), except for CreatedUnix, which the caller stamps.
func BuildSealed(cfg SealConfig) (*store.Sealed, error) {
	sealed := &store.Sealed{}
	progress := func(section string) func(done, total int) {
		if cfg.Progress == nil {
			return nil
		}
		return func(done, total int) { cfg.Progress(section, done, total) }
	}

	for _, k := range cfg.CycleKs {
		name := fmt.Sprintf("cycles/k=%d", k)
		census, err := enumerate.RunWith(k, true, enumerate.RunOpts{
			Workers:  cfg.Workers,
			Ctx:      cfg.Ctx,
			Progress: progress(name),
		})
		if err != nil {
			return nil, fmt.Errorf("seal %s: %w", name, err)
		}
		sec := store.SealedSection{Name: name, Domain: enumerate.CycleDomain, Kind: store.KindCycles}
		seen := map[uint64]bool{}
		for _, e := range census.Entries {
			if seen[e.Fingerprint] {
				continue
			}
			seen[e.Fingerprint] = true
			sec.Entries = append(sec.Entries, store.SealedEntry{
				Fingerprint: e.Fingerprint,
				Value:       &classify.Result{Class: e.Class, Period: e.Period, Witness: e.Witness},
			})
		}
		sealed.Sections = append(sealed.Sections, sec)
	}

	for _, k := range cfg.PathKs {
		name := fmt.Sprintf("paths/k=%d", k)
		decisions, err := enumerate.PathDecisions(k, enumerate.PathRunOpts{
			Ctx:      cfg.Ctx,
			Progress: progress(name),
		})
		if err != nil {
			return nil, fmt.Errorf("seal %s: %w", name, err)
		}
		sec := store.SealedSection{Name: name, Domain: enumerate.PathDomain, Kind: store.KindPaths}
		for _, d := range decisions {
			sec.Entries = append(sec.Entries, store.SealedEntry{Fingerprint: d.Fingerprint, Value: d.Result})
		}
		sealed.Sections = append(sealed.Sections, sec)
	}

	if len(cfg.Rooted) > 0 {
		radius := cfg.RootedRadius
		if radius <= 0 {
			radius = rooted.DefaultCensusRadius
		}
		for _, dk := range cfg.Rooted {
			sec, err := sealRootedSpace(dk[0], dk[1], radius, cfg.Ctx, cfg.Progress)
			if err != nil {
				return nil, err
			}
			sealed.Sections = append(sealed.Sections, *sec)
		}
	}

	for _, k := range cfg.GridKs {
		sec, err := sealGridSpace(k, cfg.Ctx, cfg.Progress)
		if err != nil {
			return nil, err
		}
		sealed.Sections = append(sealed.Sections, *sec)
	}

	return sealed, nil
}

// sealRootedSpace sweeps the (delta, k) rooted space — every
// (configMask, leafMask, rootMask) problem — classifying each once
// under the rooted decider's exact fingerprint. Distinct mask triples
// yield distinct problems, but the fingerprint dedup guard keeps a hash
// collision from producing an ambiguous section.
func sealRootedSpace(delta, k, radius int, ctx context.Context, progress func(string, int, int)) (*store.SealedSection, error) {
	name := fmt.Sprintf("rooted/d=%d/k=%d", delta, k)
	sec := &store.SealedSection{Name: name, Domain: rootedDomain(radius), Kind: store.KindRooted}
	seen := map[uint64]bool{}
	capture := func(p *rooted.Problem) (*rooted.Verdict, error) {
		v, err := rooted.ClassifyProblem(p, radius)
		if err != nil {
			return nil, err
		}
		if fp := p.Fingerprint(); !seen[fp] {
			seen[fp] = true
			sec.Entries = append(sec.Entries, store.SealedEntry{Fingerprint: fp, Value: v})
		}
		return v, nil
	}
	opts := rooted.CensusOpts{MaxRadius: radius, Ctx: ctx, Classify: capture}
	if progress != nil {
		opts.Progress = func(done, total int) { progress(name, done, total) }
	}
	if _, err := rooted.RunCensus(delta, k, opts); err != nil {
		return nil, fmt.Errorf("seal %s: %w", name, err)
	}
	return sec, nil
}

// sealGridSpace sweeps the full (not orbit-reduced) k-label cycle mask
// space for the one-dimensional oriented torus: the grid decider hashes
// exact encodings, so every mask pair needs its own entry. Dimension 1
// is the exact (and cheap) regime — grid.Classify reduces it to the
// oriented-cycle automaton; higher dimensions take their verdicts from
// per-axis factorization at serving time and are not sealed.
func sealGridSpace(k int, ctx context.Context, progress func(string, int, int)) (*store.SealedSection, error) {
	name := fmt.Sprintf("grid/d=1/k=%d", k)
	gd := gridDecider{}
	pairSpace := uint(1) << uint(enumerate.PairCount(k))
	total := int(pairSpace) * int(pairSpace)
	sec := &store.SealedSection{Name: name, Kind: store.KindGrid}
	seen := map[uint64]bool{}
	done := 0
	for n2 := uint(0); n2 < pairSpace; n2++ {
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		for e := uint(0); e < pairSpace; e++ {
			req := Request{Mode: ModeGrid, Problem: enumerate.FromMasks(k, n2, e), Dims: 1}
			if sec.Domain == "" {
				sec.Domain = gd.MemoDomain(&req)
			}
			fp, _, err := gd.Fingerprint(&req)
			if err != nil {
				return nil, fmt.Errorf("seal %s: %w", name, err)
			}
			done++
			if seen[fp] {
				continue
			}
			seen[fp] = true
			v, err := grid.Classify(req.Problem, req.Dims)
			if err != nil {
				return nil, fmt.Errorf("seal %s: %s: %w", name, req.Problem.Name, err)
			}
			sec.Entries = append(sec.Entries, store.SealedEntry{Fingerprint: fp, Value: v})
			if progress != nil {
				progress(name, done, total)
			}
		}
	}
	return sec, nil
}
