// Building the sealed landscape: the offline sweep behind `lcltool
// seal`. Each supported finite mask space is enumerated, classified
// once per orbit representative, and packaged as one store.Sealed
// section keyed under the exact memo domain the serving decider uses —
// so a sealed table built here answers production traffic without the
// deciders knowing it exists.
//
// Coverage semantics differ by space, mirroring each decider's
// fingerprint discipline:
//
//   - cycles and paths entries are keyed by canonical fingerprint; the
//     serving fingerprint of every orbit member resolves to its
//     representative's (FastCycleFingerprint / LCLFingerprint), so one
//     entry covers the whole isomorphism class.
//   - rooted and grid entries are keyed by the deciders' exact
//     (spelling-sensitive) fingerprints, so they cover requests phrased
//     in the census encoding — labels "l0".."l{k-1}" with the canonical
//     constraint spelling — which is what lcltool and the census jobs
//     emit.
//
// Two build paths share one shard plan (sealedbuild.go): BuildSealed
// assembles the table in memory for store.SaveSealed, and
// BuildSealedFile streams shards through run files into the artifact
// with checkpointed resume — the k = 4-scale path.

package service

import (
	"context"

	"repro/internal/store"
)

// SealConfig selects which mask spaces BuildSealed sweeps. Empty slices
// skip the space entirely.
type SealConfig struct {
	// CycleKs lists cycle-census alphabet sizes to seal (each in
	// [1, canon.MaxOrbitK]).
	CycleKs []int
	// PathKs lists path-space alphabet sizes to seal (each in [1, 3]).
	PathKs []int
	// Rooted lists (delta, k) rooted spaces to seal (delta in [1, 3],
	// k in [1, 2]); RootedRadius bounds the anonymous synthesis search
	// (0 selects rooted.DefaultCensusRadius). The radius is part of the
	// memo domain, so a table sealed at one radius only serves requests
	// asking for it.
	Rooted       [][2]int
	RootedRadius int
	// GridKs lists mask-space alphabet sizes to seal for the
	// one-dimensional oriented torus (each in [1, canon.MaxOrbitK]).
	GridKs []int
	// Workers sets the shard worker pool size (<= 0 selects
	// GOMAXPROCS). Worker count never affects the built artifact's
	// bytes, only wall-clock.
	Workers int
	// Ctx, when non-nil, cancels the build between problems.
	Ctx context.Context
	// Progress, when non-nil, is called per section as classification
	// advances. It may be called concurrently from shard workers.
	Progress func(section string, done, total int)

	// The fields below apply to BuildSealedFile (the sharded,
	// checkpointed file build) only.

	// CreatedUnix pins the artifact header timestamp; 0 stamps the
	// build's start time. Resumed builds always keep the original
	// stamp recorded in the build manifest, so interrupted and
	// uninterrupted builds stay byte-identical.
	CreatedUnix int64
	// BuildDir holds the run files and manifest while the build is in
	// flight (default: the artifact path + ".build"). It is removed on
	// success.
	BuildDir string
	// Resume reuses complete shard run files found in BuildDir from a
	// previously interrupted build of the same configuration instead
	// of rebuilding them.
	Resume bool
	// ShardDone, when non-nil, is called after every shard completes
	// or is skipped on resume. It may be called concurrently.
	ShardDone func(SealShardEvent)
}

// DefaultSealConfig covers every space the classifiers handle at
// interactive build cost: the full k <= 3 cycle and grid mask spaces,
// the k <= 2 path spaces, and all four supported rooted (delta, k)
// spaces at the default census radius. The k = 4 cycle frontier is
// opt-in (`lcltool seal -cycles-k 4`): its ~46k representatives build
// in minutes, not milliseconds.
func DefaultSealConfig() SealConfig {
	return SealConfig{
		CycleKs: []int{1, 2, 3},
		PathKs:  []int{1, 2},
		Rooted:  [][2]int{{1, 1}, {2, 1}, {3, 1}, {1, 2}, {2, 2}},
		GridKs:  []int{1, 2, 3},
	}
}

// BuildSealed classifies every orbit representative of the configured
// mask spaces and returns the sealed landscape ready for
// store.SaveSealed. The build runs the same deterministic shard plan
// as BuildSealedFile over the worker pool, assembling sections in
// memory: for a given config the result is independent of worker
// count (section order follows the config, shard results concatenate
// in plan order, and entries are fingerprint-sorted on encode),
// except for CreatedUnix, which the caller stamps.
func BuildSealed(cfg SealConfig) (*store.Sealed, error) {
	plan, err := planSeal(cfg)
	if err != nil {
		return nil, err
	}
	// Shard results land in their plan slot, then concatenate in order
	// — the in-memory equivalent of the file build's run merge.
	shardEntries := make([][][]store.SealedEntry, len(plan))
	for si := range plan {
		shardEntries[si] = make([][]store.SealedEntry, len(plan[si].shards))
	}
	done := func(t sealTask, entries []store.SealedEntry) error {
		shardEntries[t.section][t.shard] = entries
		return nil
	}
	if err := runSealShards(cfg.Ctx, cfg, plan, nil, done); err != nil {
		return nil, err
	}
	sealed := &store.Sealed{}
	for si := range plan {
		sec := store.SealedSection{Name: plan[si].name, Domain: plan[si].domain, Kind: plan[si].kind}
		for _, entries := range shardEntries[si] {
			sec.Entries = append(sec.Entries, entries...)
		}
		sealed.Sections = append(sealed.Sections, sec)
	}
	return sealed, nil
}
