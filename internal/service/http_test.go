package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/decide"
	"repro/internal/lcl"
	"repro/internal/problems"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	e := New(Config{Workers: 4})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

// classifyBody builds a /v1/classify payload with the problem embedded
// via the lcl codec.
func classifyBody(t *testing.T, mode string, p json.Marshaler) map[string]any {
	t.Helper()
	raw, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return map[string]any{"mode": mode, "problem": json.RawMessage(raw)}
}

// detailOf unmarshals a wire response's decider detail into a map.
func detailOf(t *testing.T, wr *wireResponse) map[string]any {
	t.Helper()
	if len(wr.Detail) == 0 {
		t.Fatalf("response has no detail: %+v", wr)
	}
	var m map[string]any
	if err := json.Unmarshal(wr.Detail, &m); err != nil {
		t.Fatalf("detail: %v", err)
	}
	return m
}

// TestHTTPEveryDeciderRoundTrips is the registry's transport contract,
// table-driven over every registered decider: POST /v1/classify serves
// it, the class field is a shared-lattice value, an identical second
// request hits the memo cache, and /statsz counts it in its own
// per-decider bucket.
func TestHTTPEveryDeciderRoundTrips(t *testing.T) {
	srv := newTestServer(t)
	c3raw, _ := problems.Coloring(3, 2).MarshalJSON()
	trivraw, _ := problems.Trivial(2).MarshalJSON()
	coraw, _ := problems.ConsistentOrientation().MarshalJSON()

	cases := []struct {
		mode      string
		body      map[string]any
		wantClass string
	}{
		{"cycles", map[string]any{"mode": "cycles", "problem": json.RawMessage(c3raw)}, "Θ(log* n)"},
		{"trees", map[string]any{"mode": "trees", "problem": json.RawMessage(trivraw)}, "O(1)"},
		{"paths-inputs", map[string]any{"mode": "paths-inputs", "problem": json.RawMessage(c3raw)}, "unknown"},
		{"synthesize", map[string]any{"mode": "synthesize", "problem": json.RawMessage(trivraw)}, "O(1)"},
		{"rooted", map[string]any{"mode": "rooted", "rooted": rootedTwoColoring()}, "unknown"},
		{"grid", map[string]any{"mode": "grid", "dims": 1, "problem": json.RawMessage(coraw)}, "O(1)"},
	}
	registered := DefaultRegistry().Names()
	if len(cases) != len(registered) {
		t.Fatalf("test table covers %d deciders, registry has %d (%v)", len(cases), len(registered), registered)
	}
	covered := map[string]bool{}
	for _, tc := range cases {
		covered[tc.mode] = true
	}
	for _, name := range registered {
		if !covered[name] {
			t.Fatalf("registered decider %q missing from the table", name)
		}
	}

	for _, tc := range cases {
		t.Run(tc.mode, func(t *testing.T) {
			resp, body := postJSON(t, srv.URL+"/v1/classify", tc.body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var wr wireResponse
			if err := json.Unmarshal(body, &wr); err != nil {
				t.Fatal(err)
			}
			if wr.Mode != tc.mode || wr.Error != "" {
				t.Fatalf("metadata: %s", body)
			}
			if _, err := decide.ParseClass(wr.Class); err != nil {
				t.Fatalf("class %q is not a lattice value: %v", wr.Class, err)
			}
			if wr.Class != tc.wantClass {
				t.Fatalf("class %q, want %q (%s)", wr.Class, tc.wantClass, body)
			}
			if wr.CacheHit {
				t.Fatalf("first request served from cache: %s", body)
			}
			detailOf(t, &wr) // every decider ships a detail object

			// Identical second request: memoized.
			_, body = postJSON(t, srv.URL+"/v1/classify", tc.body)
			if err := json.Unmarshal(body, &wr); err != nil {
				t.Fatal(err)
			}
			if !wr.CacheHit {
				t.Fatalf("repeat not served from cache: %s", body)
			}
			if wr.Class != tc.wantClass {
				t.Fatalf("cached class drifted: %s", body)
			}
		})
	}

	// Per-decider stats: every registered decider served exactly two
	// requests; nothing leaked into other buckets.
	var st Stats
	if resp := getJSON(t, srv.URL+"/statsz", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz status %d", resp.StatusCode)
	}
	for _, name := range registered {
		if st.ByDecider[name] != 2 {
			t.Fatalf("decider %q served %d requests, want 2 (%+v)", name, st.ByDecider[name], st.ByDecider)
		}
	}
	if st.UnknownModeRejects != 0 {
		t.Fatalf("spurious unknown-mode rejects: %+v", st)
	}
}

func TestHTTPClassifyCycles(t *testing.T) {
	srv := newTestServer(t)
	resp, body := postJSON(t, srv.URL+"/v1/classify", classifyBody(t, "cycles", problems.Coloring(3, 2)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var wr wireResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Class != "Θ(log* n)" {
		t.Fatalf("class %q, body %s", wr.Class, body)
	}
	if wr.Problem != "3-coloring" || len(wr.Fingerprint) != 16 {
		t.Fatalf("metadata: %s", body)
	}
	if d := detailOf(t, &wr); d["class"] != "Θ(log* n)" || d["witness"] == "" {
		t.Fatalf("cycles detail: %v", d)
	}
}

func TestHTTPClassifyTreesAndSynth(t *testing.T) {
	srv := newTestServer(t)
	resp, body := postJSON(t, srv.URL+"/v1/classify", classifyBody(t, "trees", problems.Trivial(2)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var wr wireResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if d := detailOf(t, &wr); d["constant"] != true {
		t.Fatalf("trees verdict: %s", body)
	}

	_, body = postJSON(t, srv.URL+"/v1/classify", classifyBody(t, "synthesize", problems.Trivial(2)))
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if d := detailOf(t, &wr); d["found"] != true || d["radius"] != float64(0) {
		t.Fatalf("synth outcome: %s", body)
	}
}

// TestHTTPClassifyRootedAndGrid: the two new families, end to end with
// their native payloads.
func TestHTTPClassifyRootedAndGrid(t *testing.T) {
	srv := newTestServer(t)
	resp, body := postJSON(t, srv.URL+"/v1/classify", map[string]any{
		"mode": "rooted", "rooted": rootedTwoColoring(), "max_radius": 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rooted status %d: %s", resp.StatusCode, body)
	}
	var wr wireResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Class != "unknown" || wr.Problem != "rooted-2col" {
		t.Fatalf("rooted response: %s", body)
	}
	if d := detailOf(t, &wr); d["solvable_everywhere"] != true || d["constant_anon"] != false {
		t.Fatalf("rooted detail: %v", d)
	}

	// Dim0Problem is the Θ(√n) landscape witness, served over the wire
	// with its shared-lattice spelling.
	dim0raw, _ := dim0WireProblem(t)
	resp, body = postJSON(t, srv.URL+"/v1/classify", map[string]any{
		"mode": "grid", "dims": 2, "problem": dim0raw,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Class != "Θ(n^{1/2})" {
		t.Fatalf("grid class %q: %s", wr.Class, body)
	}
	if d := detailOf(t, &wr); d["exact"] != true {
		t.Fatalf("grid detail: %v", d)
	}
}

// dim0WireProblem builds the 2-dim Dim0 problem through the lcl codec
// (mirrors grid.Dim0Problem without importing internal/grid, which
// would be an import cycle through the registry — service imports grid).
func dim0WireProblem(t *testing.T) (json.RawMessage, *lcl.Problem) {
	t.Helper()
	b := lcl.NewBuilder("grid-2d-dim0-2coloring", []string{"dir0", "dir1", "dir2", "dir3"}, []string{"c0", "c1", "x"})
	b.Node("c0", "c0", "x", "x")
	b.Node("c1", "c1", "x", "x")
	b.Edge("c0", "c1").Edge("x", "x")
	b.Allow("dir0", "c0", "c1").Allow("dir1", "c0", "c1")
	b.Allow("dir2", "x").Allow("dir3", "x")
	p := b.MustBuild()
	raw, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return raw, p
}

func TestHTTPClassifyErrors(t *testing.T) {
	srv := newTestServer(t)
	// Malformed JSON.
	resp, err := http.Post(srv.URL+"/v1/classify", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}
	// Missing problem payload (neither lcl nor rooted).
	resp, body := postJSON(t, srv.URL+"/v1/classify", map[string]any{"mode": "cycles"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing problem: status %d, %s", resp.StatusCode, body)
	}
	// Semantically invalid: cycles on an input-labeled problem.
	inputful := lcl.NewBuilder("inputful", []string{"x", "y"}, []string{"A"}).
		Node("A", "A").Edge("A", "A").Allow("x", "A").Allow("y", "A").MustBuild()
	resp, body = postJSON(t, srv.URL+"/v1/classify", classifyBody(t, "cycles", inputful))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("inputful cycles: status %d, %s", resp.StatusCode, body)
	}
	// Unknown mode.
	resp, body = postJSON(t, srv.URL+"/v1/classify", classifyBody(t, "oracle", problems.Trivial(2)))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown mode: status %d, %s", resp.StatusCode, body)
	}
	// Wrong method.
	resp = getJSON(t, srv.URL+"/v1/classify", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET classify: status %d", resp.StatusCode)
	}
}

func TestHTTPBatch(t *testing.T) {
	srv := newTestServer(t)
	c3, _ := problems.Coloring(3, 2).MarshalJSON()
	triv, _ := problems.Trivial(2).MarshalJSON()
	body := map[string]any{"requests": []map[string]any{
		{"mode": "cycles", "problem": json.RawMessage(c3)},
		{"mode": "cycles"}, // decode error: missing problem
		{"mode": "paths-inputs", "problem": json.RawMessage(triv)},
		{"mode": "cycles", "problem": json.RawMessage(c3)}, // duplicate
		{"mode": "rooted", "rooted": rootedTwoColoring()},  // mixed family
	}}
	resp, raw := postJSON(t, srv.URL+"/v1/classify/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out wireBatchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 5 {
		t.Fatalf("%d results", len(out.Results))
	}
	if out.Results[0].Class != "Θ(log* n)" || out.Results[0].Error != "" {
		t.Fatalf("result 0: %+v", out.Results[0])
	}
	if out.Results[1].Error == "" {
		t.Fatalf("result 1 should carry a decode error: %+v", out.Results[1])
	}
	if d := detailOf(t, out.Results[2]); d["solvable_all_inputs"] != true {
		t.Fatalf("result 2: %+v", out.Results[2])
	}
	if out.Results[4].Error != "" || out.Results[4].Mode != "rooted" {
		t.Fatalf("result 4: %+v", out.Results[4])
	}
	// Exactly one of the two identical requests computed; the other was
	// served from cache or coalesced (scheduling decides which slot).
	computed := 0
	for _, i := range []int{0, 3} {
		if !out.Results[i].CacheHit && !out.Results[i].Coalesced {
			computed++
		}
	}
	if computed != 1 {
		t.Fatalf("%d computations for duplicate batch entries: %+v / %+v", computed, out.Results[0], out.Results[3])
	}

	// Empty batch is rejected.
	resp, raw = postJSON(t, srv.URL+"/v1/classify/batch", map[string]any{"requests": []any{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, %s", resp.StatusCode, raw)
	}
}

func TestHTTPCensus(t *testing.T) {
	srv := newTestServer(t)
	var wc wireCensus
	resp := getJSON(t, srv.URL+"/v1/census/2", &wc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if wc.K != 2 || !wc.Dedup || !wc.GapHolds {
		t.Fatalf("census header: %+v", wc)
	}
	if wc.TotalProblems != 64 {
		t.Fatalf("k=2 raw total %d, want 64", wc.TotalProblems)
	}
	if _, ok := wc.Classes["Θ(log* n)"]; ok {
		if wc.Classes["Θ(log* n)"].Raw != 0 {
			t.Fatalf("k=2 census has log* problems: %+v", wc.Classes)
		}
	}

	// dedup=false drops class-representative counts.
	resp = getJSON(t, srv.URL+"/v1/census/2?dedup=false", &wc)
	if resp.StatusCode != http.StatusOK || wc.Dedup {
		t.Fatalf("dedup=false: %d %+v", resp.StatusCode, wc)
	}

	for _, bad := range []string{"/v1/census/0", "/v1/census/9", "/v1/census/x", "/v1/census/2?dedup=maybe"} {
		resp := getJSON(t, srv.URL+bad, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d", bad, resp.StatusCode)
		}
	}
}

func TestHTTPHealthzStatsz(t *testing.T) {
	srv := newTestServer(t)
	var health map[string]string
	if resp := getJSON(t, srv.URL+"/healthz", &health); resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: %+v", health)
	}

	// Drive one request so the counters move.
	postJSON(t, srv.URL+"/v1/classify", classifyBody(t, "cycles", problems.Coloring(3, 2)))
	var st Stats
	if resp := getJSON(t, srv.URL+"/statsz", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz status %d", resp.StatusCode)
	}
	if st.Requests == 0 || st.ByDecider["cycles"] == 0 || st.Workers != 4 {
		t.Fatalf("statsz: %+v", st)
	}
	if st.Cache.Puts == 0 {
		t.Fatalf("statsz cache: %+v", st.Cache)
	}
	if len(st.Deciders) == 0 {
		t.Fatalf("statsz deciders: %+v", st)
	}
}

// TestHTTPRoundTripThroughCodec: a problem marshaled by the codec, sent
// over the API, and classified equals the in-process classification —
// the wire format loses nothing the classifier needs.
func TestHTTPRoundTripThroughCodec(t *testing.T) {
	srv := newTestServer(t)
	for _, p := range problems.All(2) {
		if p.NumIn() != 1 {
			continue // cycles mode is input-free
		}
		e := New(Config{Workers: 1})
		want, err := e.Classify(Request{Problem: p, Mode: "cycles"})
		e.Close()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		_, raw := postJSON(t, srv.URL+"/v1/classify", classifyBody(t, "cycles", p))
		var wr wireResponse
		if err := json.Unmarshal(raw, &wr); err != nil {
			t.Fatal(err)
		}
		if wr.Class != want.Cycles().Class.String() {
			t.Fatalf("%s: API says %q, library says %q", p.Name, wr.Class, want.Cycles().Class)
		}
		if wr.Fingerprint != fmt.Sprintf("%016x", want.Fingerprint) {
			t.Fatalf("%s: fingerprint drift across the wire", p.Name)
		}
	}
}
