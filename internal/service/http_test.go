package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/lcl"
	"repro/internal/problems"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	e := New(Config{Workers: 4})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

// classifyBody builds a /v1/classify payload with the problem embedded
// via the lcl codec.
func classifyBody(t *testing.T, mode string, p json.Marshaler) map[string]any {
	t.Helper()
	raw, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return map[string]any{"mode": mode, "problem": json.RawMessage(raw)}
}

func TestHTTPClassifyCycles(t *testing.T) {
	srv := newTestServer(t)
	resp, body := postJSON(t, srv.URL+"/v1/classify", classifyBody(t, "cycles", problems.Coloring(3, 2)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var wr wireResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Class != "Θ(log* n)" {
		t.Fatalf("class %q, body %s", wr.Class, body)
	}
	if wr.Problem != "3-coloring" || len(wr.Fingerprint) != 16 {
		t.Fatalf("metadata: %s", body)
	}

	// Second identical request is a cache hit.
	_, body = postJSON(t, srv.URL+"/v1/classify", classifyBody(t, "cycles", problems.Coloring(3, 2)))
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if !wr.CacheHit {
		t.Fatalf("repeat not served from cache: %s", body)
	}
}

func TestHTTPClassifyTreesAndSynth(t *testing.T) {
	srv := newTestServer(t)
	resp, body := postJSON(t, srv.URL+"/v1/classify", classifyBody(t, "trees", problems.Trivial(2)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var wr wireResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Trees == nil || !wr.Trees.Constant {
		t.Fatalf("trees verdict: %s", body)
	}

	_, body = postJSON(t, srv.URL+"/v1/classify", classifyBody(t, "synthesize", problems.Trivial(2)))
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Synth == nil || !wr.Synth.Found || wr.Synth.Radius != 0 {
		t.Fatalf("synth outcome: %s", body)
	}
}

func TestHTTPClassifyErrors(t *testing.T) {
	srv := newTestServer(t)
	// Malformed JSON.
	resp, err := http.Post(srv.URL+"/v1/classify", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}
	// Missing problem.
	resp, body := postJSON(t, srv.URL+"/v1/classify", map[string]any{"mode": "cycles"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing problem: status %d, %s", resp.StatusCode, body)
	}
	// Semantically invalid: cycles on an input-labeled problem.
	inputful := lcl.NewBuilder("inputful", []string{"x", "y"}, []string{"A"}).
		Node("A", "A").Edge("A", "A").Allow("x", "A").Allow("y", "A").MustBuild()
	resp, body = postJSON(t, srv.URL+"/v1/classify", classifyBody(t, "cycles", inputful))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("inputful cycles: status %d, %s", resp.StatusCode, body)
	}
	// Unknown mode.
	resp, body = postJSON(t, srv.URL+"/v1/classify", classifyBody(t, "oracle", problems.Trivial(2)))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown mode: status %d, %s", resp.StatusCode, body)
	}
	// Wrong method.
	resp = getJSON(t, srv.URL+"/v1/classify", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET classify: status %d", resp.StatusCode)
	}
}

func TestHTTPBatch(t *testing.T) {
	srv := newTestServer(t)
	c3, _ := problems.Coloring(3, 2).MarshalJSON()
	triv, _ := problems.Trivial(2).MarshalJSON()
	body := map[string]any{"requests": []map[string]any{
		{"mode": "cycles", "problem": json.RawMessage(c3)},
		{"mode": "cycles"}, // decode error: missing problem
		{"mode": "paths-inputs", "problem": json.RawMessage(triv)},
		{"mode": "cycles", "problem": json.RawMessage(c3)}, // duplicate
	}}
	resp, raw := postJSON(t, srv.URL+"/v1/classify/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out wireBatchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("%d results", len(out.Results))
	}
	if out.Results[0].Class != "Θ(log* n)" || out.Results[0].Error != "" {
		t.Fatalf("result 0: %+v", out.Results[0])
	}
	if out.Results[1].Error == "" {
		t.Fatalf("result 1 should carry a decode error: %+v", out.Results[1])
	}
	if out.Results[2].Paths == nil || !out.Results[2].Paths.SolvableAllInputs {
		t.Fatalf("result 2: %+v", out.Results[2])
	}
	// Exactly one of the two identical requests computed; the other was
	// served from cache or coalesced (scheduling decides which slot).
	computed := 0
	for _, i := range []int{0, 3} {
		if !out.Results[i].CacheHit && !out.Results[i].Coalesced {
			computed++
		}
	}
	if computed != 1 {
		t.Fatalf("%d computations for duplicate batch entries: %+v / %+v", computed, out.Results[0], out.Results[3])
	}

	// Empty batch is rejected.
	resp, raw = postJSON(t, srv.URL+"/v1/classify/batch", map[string]any{"requests": []any{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, %s", resp.StatusCode, raw)
	}
}

func TestHTTPCensus(t *testing.T) {
	srv := newTestServer(t)
	var wc wireCensus
	resp := getJSON(t, srv.URL+"/v1/census/2", &wc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if wc.K != 2 || !wc.Dedup || !wc.GapHolds {
		t.Fatalf("census header: %+v", wc)
	}
	if wc.TotalProblems != 64 {
		t.Fatalf("k=2 raw total %d, want 64", wc.TotalProblems)
	}
	if _, ok := wc.Classes["Θ(log* n)"]; ok {
		if wc.Classes["Θ(log* n)"].Raw != 0 {
			t.Fatalf("k=2 census has log* problems: %+v", wc.Classes)
		}
	}

	// dedup=false drops class-representative counts.
	resp = getJSON(t, srv.URL+"/v1/census/2?dedup=false", &wc)
	if resp.StatusCode != http.StatusOK || wc.Dedup {
		t.Fatalf("dedup=false: %d %+v", resp.StatusCode, wc)
	}

	for _, bad := range []string{"/v1/census/0", "/v1/census/9", "/v1/census/x", "/v1/census/2?dedup=maybe"} {
		resp := getJSON(t, srv.URL+bad, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d", bad, resp.StatusCode)
		}
	}
}

func TestHTTPHealthzStatsz(t *testing.T) {
	srv := newTestServer(t)
	var health map[string]string
	if resp := getJSON(t, srv.URL+"/healthz", &health); resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: %+v", health)
	}

	// Drive one request so the counters move.
	postJSON(t, srv.URL+"/v1/classify", classifyBody(t, "cycles", problems.Coloring(3, 2)))
	var st Stats
	if resp := getJSON(t, srv.URL+"/statsz", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz status %d", resp.StatusCode)
	}
	if st.Requests == 0 || st.ByMode[ModeCycles] == 0 || st.Workers != 4 {
		t.Fatalf("statsz: %+v", st)
	}
	if st.Cache.Puts == 0 {
		t.Fatalf("statsz cache: %+v", st.Cache)
	}
}

// TestHTTPRoundTripThroughCodec: a problem marshaled by the codec, sent
// over the API, and classified equals the in-process classification —
// the wire format loses nothing the classifier needs.
func TestHTTPRoundTripThroughCodec(t *testing.T) {
	srv := newTestServer(t)
	for _, p := range problems.All(2) {
		if p.NumIn() != 1 {
			continue // cycles mode is input-free
		}
		e := New(Config{Workers: 1})
		want, err := e.Classify(Request{Problem: p, Mode: ModeCycles})
		e.Close()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		_, raw := postJSON(t, srv.URL+"/v1/classify", classifyBody(t, "cycles", p))
		var wr wireResponse
		if err := json.Unmarshal(raw, &wr); err != nil {
			t.Fatal(err)
		}
		if wr.Class != want.Cycles.Class.String() {
			t.Fatalf("%s: API says %q, library says %q", p.Name, wr.Class, want.Cycles.Class)
		}
		if wr.Fingerprint != fmt.Sprintf("%016x", want.Fingerprint) {
			t.Fatalf("%s: fingerprint drift across the wire", p.Name)
		}
	}
}
