// Package service is the batch classification engine behind the
// lclserver API: it dispatches requests through the decider registry
// (internal/decide), fans them out across a configurable worker pool,
// deduplicates identical in-flight requests (singleflight), and memoizes
// results in a sharded cache (internal/memo) keyed by each decider's
// fingerprint and memo domain.
//
// The engine never inspects a request's mode itself: the registered
// Decider supplies validation, the memo key domain (which also tags
// snapshot records, through the key), the computation, and the
// projection of its payload onto the shared complexity-class lattice.
// Caching is sound because each decider's Fingerprint only identifies
// requests its Compute answers identically — canonical forms under
// label isomorphism for the lcl-based deciders (whose classifiers
// depend only on the constraint structure of Π, never the alphabet
// spelling), exact structural hashes where isomorphism would be too
// coarse (rooted, grid).
package service

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/decide"
	"repro/internal/enumerate"
	"repro/internal/grid"
	"repro/internal/jobs"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/rooted"
	"repro/internal/store"
)

// Request is one classification request; Mode selects the registered
// decider (see deciders.go for the names and parameters).
type Request = decide.Request

// SynthOutcome is the synthesize decider's payload.
type SynthOutcome struct {
	// Algorithm is the synthesized order-invariant algorithm (nil when
	// Found is false).
	Algorithm *enumerate.Synthesized
	// Radius is the smallest radius at which synthesis succeeded.
	Radius int
	// Found reports whether any radius <= MaxRadius admits an algorithm;
	// false is a proof of non-existence for the searched radii.
	Found bool
}

// Response is a classification result plus serving metadata.
type Response struct {
	// Mode is the decider that served the request.
	Mode        string
	Fingerprint uint64
	// CacheHit reports the result came from the memo cache.
	CacheHit bool
	// Coalesced reports the request waited on an identical in-flight
	// computation instead of running its own.
	Coalesced bool
	// Sealed reports the result came from the read-only sealed landscape
	// table (which implies CacheHit: the verdict was precomputed).
	Sealed bool
	// Class is the decider's verdict on the shared complexity-class
	// lattice.
	Class decide.Class
	// Detail is the decider-specific wire view (Decider.WrapPayload).
	Detail any
	// Payload is the raw decider payload — the memoized value. The
	// typed accessors below unwrap it.
	Payload any
}

// Cycles returns the cycle classification payload, or nil for other
// modes.
func (r *Response) Cycles() *classify.Result {
	v, _ := r.Payload.(*classify.Result)
	return v
}

// Trees returns the tree gap-pipeline payload, or nil for other modes.
func (r *Response) Trees() *core.TreeVerdict {
	v, _ := r.Payload.(*core.TreeVerdict)
	return v
}

// Paths returns the paths-with-inputs payload, or nil for other modes.
func (r *Response) Paths() *classify.InputsResult {
	v, _ := r.Payload.(*classify.InputsResult)
	return v
}

// Synth returns the synthesis payload, or nil for other modes.
func (r *Response) Synth() *SynthOutcome {
	v, _ := r.Payload.(*SynthOutcome)
	return v
}

// Rooted returns the rooted-tree payload, or nil for other modes.
func (r *Response) Rooted() *rooted.Verdict {
	v, _ := r.Payload.(*rooted.Verdict)
	return v
}

// Grid returns the oriented-grid payload, or nil for other modes.
func (r *Response) Grid() *grid.Verdict {
	v, _ := r.Payload.(*grid.Verdict)
	return v
}

// Config configures an Engine.
type Config struct {
	// Registry supplies the decision procedures (nil selects
	// DefaultRegistry: cycles, trees, paths-inputs, synthesize, rooted,
	// grid). Register every decider before New: per-decider stats
	// buckets and the census job table are built at construction, so a
	// decider registered later still serves requests but gets no stats
	// bucket and contributes no job type.
	Registry *decide.Registry
	// Workers is the size of the batch worker pool (<= 0 selects 4).
	Workers int
	// CacheShards and CacheCapacity size the memo cache (memo defaults
	// when zero). Cache overrides both with an externally shared cache.
	CacheShards   int
	CacheCapacity int
	Cache         *memo.Cache
	// Snapshot, when non-nil, warm-starts the engine: memo entries are
	// imported into the cache (with lifetime counters preserved), census
	// results are restored and served without recomputation, and census
	// runs not covered verbatim warm-start from the restored
	// fingerprints. Records damaged beyond use are skipped, never fatal.
	Snapshot *store.Snapshot
	// SnapshotPath, when non-empty, is where SaveSnapshot (and the
	// POST /v1/admin/snapshot endpoint) writes.
	SnapshotPath string
	// Sealed, when non-nil, is the precomputed landscape table (built by
	// lcltool seal, loaded with store.LoadSealed). It is consulted before
	// the memo cache: a hit is one hash and one lock-free probe — no LRU
	// bump, no shard contention, no allocation. A miss falls through to
	// the existing cache/compute path unchanged, so serving without a
	// table (or after refusing a corrupt one) is bit-identical, just
	// slower.
	Sealed *store.SealedTable
	// MaxBatch bounds /v1/classify/batch item counts (<= 0 selects
	// DefaultMaxBatch); the HTTP layer rejects larger batches with 413.
	// It also bounds the pooled batch scratch arenas.
	MaxBatch int
	// JobWorkers bounds concurrently running background jobs (<= 0
	// selects 1; each job is internally parallel across the engine's
	// worker count already).
	JobWorkers int
	// JobsLedgerPath, when non-empty, persists the job ledger there on
	// every job state transition.
	JobsLedgerPath string
	// JobsLedger, when non-nil, seeds the job manager from a previously
	// saved ledger: unfinished jobs are re-enqueued at construction (see
	// internal/jobs). Pair it with Snapshot so re-enqueued censuses
	// resume warm.
	JobsLedger *jobs.Ledger
	// CheckpointEvery is the running-job checkpoint interval (the jobs
	// default when zero). Checkpoints save the engine snapshot, so they
	// only happen when SnapshotPath is set.
	CheckpointEvery time.Duration
	// Obs supplies the observability surface (metrics registry, trace
	// ring, structured logger). Nil builds a private obs.NewSet, so an
	// engine is always instrumented unless DisableObs opts out.
	Obs *obs.Set
	// DisableObs builds the engine without instrumentation: no metric
	// registrations, no per-request observations, Obs() returns nil.
	// Exists for measuring instrumentation overhead (bench gate) and for
	// embedders that want the bare engine.
	DisableObs bool
}

// DefaultWorkers is the worker pool size when Config leaves it zero.
const DefaultWorkers = 4

// Engine is the classification service. It is safe for concurrent use.
type Engine struct {
	registry *decide.Registry
	cache    *memo.Cache
	workers  int

	jobs chan func()
	wg   sync.WaitGroup

	mu       sync.Mutex
	inflight map[uint64]*call
	closed   bool

	// censusMu guards the census result caches, their in-flight calls,
	// the snapshot-restored warm censuses, and the snapshot bookkeeping.
	censusMu     sync.Mutex
	censuses     map[censusKey]*enumerate.Census
	censusCalls  map[censusKey]*call
	pathCensuses map[int]*enumerate.PathCensus
	pathCalls    map[int]*call
	// warmByK holds one restored census per alphabet size for
	// enumerate.RunOpts.Warm (preferring the deduplicated record: its
	// representatives carry every fingerprint in the space).
	warmByK map[int]*enumerate.Census

	// jobMgr orchestrates background jobs (see jobs.go); constructed
	// after the snapshot restore so re-enqueued jobs start warm.
	jobMgr *jobs.Manager
	// streamsDone is closed by ShutdownStreams to end long-lived event
	// streams (SSE handlers) that would otherwise hold up an HTTP drain.
	streamsDone     chan struct{}
	streamsShutdown sync.Once

	// sealed is the read-only precomputed landscape table (nil = tier
	// off); its hit/miss counters live beside the engine's other serving
	// counters.
	sealed       *store.SealedTable
	sealedHits   atomic.Uint64
	sealedMisses atomic.Uint64
	// sealedVerdicts memoizes WrapPayload results per sealed entry index
	// (sized to the table at construction): the table is a fixed
	// immutable set and wrapping is pure, so batch serving of sealed
	// hits allocates nothing at steady state (see batch.go).
	sealedVerdicts []atomic.Pointer[decide.Verdict]

	// maxBatch is the batch item limit the HTTP layer enforces
	// (Config.MaxBatch, defaulted).
	maxBatch int

	snapshotPath string
	snapLoaded   bool
	snapMemo     int // memo entries restored
	snapCensuses int
	snapPaths    int
	snapSkipped  int // snapshot records skipped as unusable
	snapTime     time.Time

	requests  atomic.Uint64
	errors    atomic.Uint64
	coalesced atomic.Uint64
	// byDecider counts requests per registered decider (keys fixed at
	// construction from the registry); unknownMode counts requests
	// rejected for naming no registered decider — they pollute no
	// decider's bucket.
	byDecider   map[string]*atomic.Uint64
	unknownMode atomic.Uint64

	// obs is the engine's observability state (see obs.go); nil when the
	// engine was built with Config.DisableObs.
	obs *engineObs
}

// censusKey identifies one census result.
type censusKey struct {
	k     int
	dedup bool
}

// call is one in-flight computation that later identical requests attach
// to. payload is the mode-specific result value — the same value the
// memo cache stores, so census runs (which cache *classify.Result under
// the cycles domain) and API traffic interoperate.
type call struct {
	done    chan struct{}
	payload any
	err     error
}

// New starts an engine with cfg's worker pool and cache.
func New(cfg Config) *Engine {
	workers := cfg.Workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	cache := cfg.Cache
	if cache == nil {
		cache = memo.New(cfg.CacheShards, cfg.CacheCapacity)
	}
	registry := cfg.Registry
	if registry == nil {
		registry = DefaultRegistry()
	}
	byDecider := map[string]*atomic.Uint64{}
	for _, name := range registry.Names() {
		byDecider[name] = &atomic.Uint64{}
	}
	e := &Engine{
		registry:     registry,
		byDecider:    byDecider,
		cache:        cache,
		workers:      workers,
		jobs:         make(chan func()),
		streamsDone:  make(chan struct{}),
		inflight:     map[uint64]*call{},
		censuses:     map[censusKey]*enumerate.Census{},
		censusCalls:  map[censusKey]*call{},
		pathCensuses: map[int]*enumerate.PathCensus{},
		pathCalls:    map[int]*call{},
		warmByK:      map[int]*enumerate.Census{},
		sealed:       cfg.Sealed,
		snapshotPath: cfg.SnapshotPath,
		maxBatch:     cfg.MaxBatch,
	}
	if e.maxBatch <= 0 {
		e.maxBatch = DefaultMaxBatch
	}
	if cfg.Sealed != nil {
		e.sealedVerdicts = make([]atomic.Pointer[decide.Verdict], cfg.Sealed.Len())
	}
	if !cfg.DisableObs {
		set := cfg.Obs
		if set == nil {
			// A private set: metrics and traces work out of the box, but
			// logging stays off — an embedder that wants log output wires
			// its own Set (as cmd/lclserver does).
			set = obs.NewSet()
			set.Logger = obs.NopLogger()
		}
		e.obs = newEngineObs(set, registry.Names())
	}
	if cfg.Snapshot != nil {
		e.restoreSnapshot(cfg.Snapshot)
	}
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for job := range e.jobs {
				job()
			}
		}()
	}
	jcfg := jobs.Config{
		Workers:         cfg.JobWorkers,
		Runners:         e.runners(),
		LedgerPath:      cfg.JobsLedgerPath,
		Ledger:          cfg.JobsLedger,
		CheckpointEvery: cfg.CheckpointEvery,
	}
	if e.snapshotPath != "" {
		jcfg.Checkpoint = func() error {
			_, err := e.SaveSnapshot()
			return err
		}
	}
	if e.obs != nil {
		jcfg.Logger = obs.Component(e.obs.set.Logger, "jobs")
		jcfg.OnCheckpoint = func(d time.Duration, err error) {
			e.obs.checkpoint.Observe(d.Seconds())
		}
	}
	e.jobMgr = jobs.New(jcfg)
	if e.obs != nil {
		e.finishObs()
	}
	return e
}

// restoreSnapshot warm-starts the engine from a loaded snapshot. Records
// that fail to re-materialize are skipped and counted — a snapshot is an
// optimization, never a reason not to start.
func (e *Engine) restoreSnapshot(s *store.Snapshot) {
	entries, err := store.DecodeMemo(s.Memo)
	if err != nil {
		// Undecodable memo records void the whole memo section (keys and
		// counters describe traffic we can no longer represent) but leave
		// the censuses usable.
		e.snapSkipped += len(s.Memo)
	} else {
		e.cache.Import(entries, memo.Stats{
			Hits:      s.MemoStats.Hits,
			Misses:    s.MemoStats.Misses,
			Evictions: s.MemoStats.Evictions,
			Puts:      s.MemoStats.Puts,
		})
		e.snapMemo = len(entries)
	}
	for i := range s.Censuses {
		rec := &s.Censuses[i]
		c, err := rec.Census()
		if err != nil {
			e.snapSkipped++
			continue
		}
		e.censuses[censusKey{c.K, c.Dedup}] = c
		if prev, ok := e.warmByK[c.K]; !ok || (!prev.Dedup && c.Dedup) {
			e.warmByK[c.K] = c
		}
		e.snapCensuses++
	}
	for i := range s.PathCensuses {
		rec := &s.PathCensuses[i]
		c, err := rec.PathCensus()
		if err != nil {
			e.snapSkipped++
			continue
		}
		e.pathCensuses[c.K] = c
		e.snapPaths++
	}
	e.snapLoaded = true
	e.snapTime = time.Unix(s.CreatedUnix, 0)
}

// ShutdownStreams ends every open job event stream (SSE). An HTTP
// server that drains in-flight requests before Engine.Close must call
// this first (http.Server.RegisterOnShutdown is the natural hook) —
// a watcher of a running job would otherwise hold the drain open for
// its full timeout, because jobs are only interrupted later, in Close.
func (e *Engine) ShutdownStreams() {
	e.streamsShutdown.Do(func() { close(e.streamsDone) })
}

// Close stops the job manager (running jobs are interrupted and
// checkpointed, the ledger is saved so the next process resumes them)
// and then the worker pool; in-flight batch items finish first. Classify
// remains usable after Close (it runs on the caller's goroutine);
// ClassifyBatch and the job API do not.
func (e *Engine) Close() {
	e.ShutdownStreams()
	e.jobMgr.Close()
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.jobs)
	}
	e.mu.Unlock()
	e.wg.Wait()
}

// Deciders returns the registered decider names in registration order.
func (e *Engine) Deciders() []string { return e.registry.Names() }

// Classify serves one request: resolve the decider, normalize,
// fingerprint, consult the cache, coalesce with an identical in-flight
// request if one exists, otherwise compute and populate the cache.
func (e *Engine) Classify(req Request) (*Response, error) {
	return e.ClassifyCtx(context.Background(), req)
}

// ClassifyCtx is Classify with a request context: a trace carried in
// ctx (obs.ContextWithTrace — the HTTP middleware installs one) gets
// per-stage spans (fingerprint, memo-get, coalesce, compute, memo-put)
// and the serving decider's name; the context also reaches the
// decider's Compute. The trace machinery is nil-safe, so untraced and
// uninstrumented calls pay only nil checks.
func (e *Engine) ClassifyCtx(ctx context.Context, req Request) (resp *Response, err error) {
	tr := obs.TraceFrom(ctx)
	d, ok := e.registry.Get(req.Mode)
	if !ok {
		// Unknown modes get their own reject counter — they must not
		// pollute any decider's stats bucket.
		e.unknownMode.Add(1)
		e.errors.Add(1)
		return nil, fmt.Errorf("service: unknown mode %q (registered: %s)",
			req.Mode, strings.Join(e.registry.Names(), ", "))
	}
	tr.SetDecider(d.Name())
	if err := d.Normalize(&req); err != nil {
		// Parameter-invalid requests count only as errors, never as
		// served requests — the pre-registry behavior, kept so
		// Requests/Errors remain comparable across versions.
		e.errors.Add(1)
		return nil, err
	}
	e.requests.Add(1)
	// The counter map is snapshotted at construction; a decider
	// registered after New still serves (registry lookups are live) but
	// has no per-decider bucket, so guard the lookup instead of
	// dereferencing nil inside a worker goroutine.
	if counter, ok := e.byDecider[d.Name()]; ok {
		counter.Add(1)
	}
	var start time.Time
	if e.obs != nil {
		start = time.Now()
		defer func() { e.observeRequest(d.Name(), start, resp != nil && resp.CacheHit, err) }()
	}

	var spanStart time.Time
	if tr != nil {
		spanStart = time.Now()
	}
	fp, exact, err := d.Fingerprint(&req)
	tr.Record("fingerprint", spanStart)
	if err != nil {
		e.errors.Add(1)
		return nil, err
	}
	// An inexact fingerprint (canonical permutation search over budget)
	// is only guaranteed invariant in one direction: isomorphic problems
	// agree, but refinement-indistinguishable non-isomorphic problems
	// may collide. Caching under it could serve one problem the other's
	// answer, so compute directly instead.
	if !exact {
		if tr != nil {
			spanStart = time.Now()
		}
		payload, err := d.Compute(ctx, &req)
		tr.Record("compute", spanStart)
		if err != nil {
			e.errors.Add(1)
			return nil, err
		}
		return e.wrap(d, &req, fp, payload, false, false)
	}
	key := memo.Key(d.MemoDomain(&req), fp)

	// Sealed landscape tier: the whole finite mask space was classified
	// offline, so a hit here is a single lock-free probe — ahead of the
	// memo cache and its shard mutex + LRU bump. A miss (problem outside
	// the sealed spaces, or no table loaded) falls through unchanged.
	if e.sealed != nil {
		if tr != nil {
			spanStart = time.Now()
		}
		v, ok := e.sealed.Get(key)
		tr.Record("sealed-get", spanStart)
		if ok {
			e.sealedHits.Add(1)
			e.observeSealed(d.Name(), true)
			resp, err := e.wrap(d, &req, fp, v, true, false)
			if resp != nil {
				resp.Sealed = true
			}
			return resp, err
		}
		e.sealedMisses.Add(1)
		e.observeSealed(d.Name(), false)
	}

	// Singleflight: attach to an identical in-flight computation. The
	// cache is checked under the lock: the computing goroutine fills the
	// cache before unregistering its call, so a request arriving here
	// either sees the call or hits the cache — an identical request is
	// never computed twice (and each request counts at most one miss).
	// The critical section is a map lookup + LRU bump, dwarfed by the
	// fingerprinting already done above.
	if tr != nil {
		spanStart = time.Now()
	}
	e.mu.Lock()
	if v, ok := e.cache.Get(key); ok {
		e.mu.Unlock()
		tr.Record("memo-get", spanStart)
		return e.wrap(d, &req, fp, v, true, false)
	}
	if c, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		tr.Record("memo-get", spanStart)
		if tr != nil {
			spanStart = time.Now()
		}
		<-c.done
		tr.Record("coalesce", spanStart)
		if c.err != nil {
			e.errors.Add(1)
			return nil, c.err
		}
		e.coalesced.Add(1)
		return e.wrap(d, &req, fp, c.payload, false, true)
	}
	c := &call{done: make(chan struct{})}
	e.inflight[key] = c
	e.mu.Unlock()
	tr.Record("memo-get", spanStart)

	if tr != nil {
		spanStart = time.Now()
	}
	// Compute under the background context, not ctx: later identical
	// requests coalesce onto this computation, and the first caller
	// hanging up must not fail the waiters.
	c.payload, c.err = d.Compute(context.Background(), &req)
	tr.Record("compute", spanStart)
	if c.err == nil {
		if tr != nil {
			spanStart = time.Now()
		}
		e.cache.Put(key, c.payload)
		tr.Record("memo-put", spanStart)
	} else {
		e.errors.Add(1)
	}
	e.mu.Lock()
	delete(e.inflight, key)
	e.mu.Unlock()
	close(c.done)

	if c.err != nil {
		return nil, c.err
	}
	return e.wrap(d, &req, fp, c.payload, false, false)
}

// wrap builds a per-request Response around a (possibly shared, always
// immutable) payload. A payload the decider does not recognize — a
// cache entry written by other code under a colliding key, say — is an
// explicit error, never a silently empty response.
func (e *Engine) wrap(d decide.Decider, req *Request, fp uint64, payload any, hit, coalesced bool) (*Response, error) {
	v, err := d.WrapPayload(payload)
	if err != nil {
		e.errors.Add(1)
		return nil, fmt.Errorf("service: %s: %w", d.Name(), err)
	}
	return &Response{
		Mode:        req.Mode,
		Fingerprint: fp,
		CacheHit:    hit,
		Coalesced:   coalesced,
		Class:       v.Class,
		Detail:      v.Detail,
		Payload:     payload,
	}, nil
}

// BatchItem pairs one batch response with its error; exactly one of the
// two is set.
type BatchItem struct {
	Response *Response
	Err      error
}

// Census returns the classified cycle census, computing it at most once
// per (k, dedup): results are cached for the engine's lifetime (they are
// immutable), restored censuses from a snapshot are served directly, and
// concurrent requests for the same census coalesce onto one computation.
// A computed census runs over the engine's memo cache and worker count —
// census runs and cycles-mode traffic share memo keys, so each warms the
// other — and warm-starts from snapshot-restored fingerprints when the
// exact (k, dedup) census was not itself persisted.
func (e *Engine) Census(k int, dedup bool) (*enumerate.Census, error) {
	return e.censusWith(nil, k, dedup, nil)
}

// censusWith is Census with a cancellation context and progress callback
// for the jobs layer. Synchronous requests and jobs share the same
// singleflight, so a census is never computed twice concurrently; a
// caller that coalesces onto another caller's computation inherits that
// computation's (possibly absent) cancellation and reports no progress.
func (e *Engine) censusWith(ctx context.Context, k int, dedup bool, progress func(done, total int)) (*enumerate.Census, error) {
	// warmByK is written only during construction (restoreSnapshot), so
	// the read needs no lock.
	return cachedCall(e, ctx, e.censuses, e.censusCalls, censusKey{k, dedup}, func() (*enumerate.Census, error) {
		return enumerate.RunWith(k, dedup, enumerate.RunOpts{
			Workers:  e.workers,
			Cache:    e.cache,
			Warm:     e.warmByK[k],
			Ctx:      ctx,
			Progress: e.censusProgress(progress),
		})
	})
}

// PathCensus returns the path-LCL solvability census for alphabet size
// k, computed at most once per k with the same caching and coalescing
// discipline as Census. Per-problem decisions go through the memo cache
// (enumerate.PathDomain), so census runs, API traffic, and snapshot
// checkpoints all warm each other.
func (e *Engine) PathCensus(k int) (*enumerate.PathCensus, error) {
	return e.pathCensusWith(nil, k, nil)
}

// pathCensusWith is PathCensus with the jobs layer's context and
// progress hooks (see censusWith for the coalescing caveats).
func (e *Engine) pathCensusWith(ctx context.Context, k int, progress func(done, total int)) (*enumerate.PathCensus, error) {
	return cachedCall(e, ctx, e.pathCensuses, e.pathCalls, k, func() (*enumerate.PathCensus, error) {
		return enumerate.RunPathsWith(k, enumerate.PathRunOpts{
			Ctx:      ctx,
			Cache:    e.cache,
			Progress: e.censusProgress(progress),
		})
	})
}

// cachedCall is the compute-at-most-once discipline shared by Census and
// PathCensus: serve from cache, else coalesce onto an in-flight call,
// else compute and publish. Results are immutable, so a cached value is
// returned to every caller; errors are not cached (a later call
// retries). Both maps are guarded by e.censusMu.
//
// A coalescing caller waits only as long as its ctx allows: a cancelled
// job (or a shutting-down manager) must not block behind another
// caller's computation, which keeps running and publishes its result
// normally. A nil ctx waits unconditionally.
func cachedCall[K comparable, V any](e *Engine, ctx context.Context, cache map[K]V, calls map[K]*call, key K, compute func() (V, error)) (V, error) {
	e.censusMu.Lock()
	if v, ok := cache[key]; ok {
		e.censusMu.Unlock()
		return v, nil
	}
	if c, ok := calls[key]; ok {
		e.censusMu.Unlock()
		var cancelled <-chan struct{}
		if ctx != nil {
			cancelled = ctx.Done()
		}
		select {
		case <-c.done:
		case <-cancelled:
			var zero V
			return zero, ctx.Err()
		}
		if c.err != nil {
			var zero V
			return zero, c.err
		}
		return c.payload.(V), nil
	}
	c := &call{done: make(chan struct{})}
	calls[key] = c
	e.censusMu.Unlock()

	v, err := compute()
	c.payload, c.err = v, err
	e.censusMu.Lock()
	if err == nil {
		cache[key] = v
	}
	delete(calls, key)
	e.censusMu.Unlock()
	close(c.done)
	return v, err
}

// BuildSnapshot captures the engine's warm state — every census computed
// or restored so far plus the persistable memo entries — as a snapshot
// ready for store.Save.
func (e *Engine) BuildSnapshot() (*store.Snapshot, int) {
	s := &store.Snapshot{CreatedUnix: time.Now().Unix()}
	e.censusMu.Lock()
	for _, c := range e.censuses {
		s.Censuses = append(s.Censuses, store.FromCensus(c))
	}
	for _, c := range e.pathCensuses {
		s.PathCensuses = append(s.PathCensuses, store.FromPathCensus(c))
	}
	e.censusMu.Unlock()
	entries, stats := e.cache.Export()
	records, skipped := store.EncodeMemo(entries)
	s.Memo = records
	s.MemoStats = store.MemoStats{
		Hits:      stats.Hits,
		Misses:    stats.Misses,
		Evictions: stats.Evictions,
		Puts:      stats.Puts,
	}
	return s, skipped
}

// SnapshotSaveResult reports one snapshot save.
type SnapshotSaveResult struct {
	Path string `json:"path"`
	// Bytes is the snapshot file size.
	Bytes int `json:"bytes"`
	// MemoEntries counts persisted cache entries; SkippedEntries counts
	// cache entries of kinds the snapshot format does not persist
	// (synthesized algorithms).
	MemoEntries    int `json:"memo_entries"`
	SkippedEntries int `json:"skipped_entries,omitempty"`
	Censuses       int `json:"censuses"`
	PathCensuses   int `json:"path_censuses"`
}

// SaveSnapshot builds a snapshot and writes it to the configured
// SnapshotPath. It fails when no path is configured.
func (e *Engine) SaveSnapshot() (*SnapshotSaveResult, error) {
	if e.snapshotPath == "" {
		return nil, fmt.Errorf("service: no snapshot path configured")
	}
	s, skipped := e.BuildSnapshot()
	n, err := store.Save(e.snapshotPath, s)
	if err != nil {
		return nil, err
	}
	e.censusMu.Lock()
	e.snapTime = time.Unix(s.CreatedUnix, 0)
	e.censusMu.Unlock()
	return &SnapshotSaveResult{
		Path:           e.snapshotPath,
		Bytes:          n,
		MemoEntries:    len(s.Memo),
		SkippedEntries: skipped,
		Censuses:       len(s.Censuses),
		PathCensuses:   len(s.PathCensuses),
	}, nil
}

// Stats is a point-in-time engine snapshot.
type Stats struct {
	Requests  uint64 `json:"requests"`
	Errors    uint64 `json:"errors"`
	Coalesced uint64 `json:"coalesced"`
	// ByDecider counts served requests per registered decider name;
	// every registered decider appears, even at zero.
	ByDecider map[string]uint64 `json:"by_decider"`
	// UnknownModeRejects counts requests naming no registered decider.
	UnknownModeRejects uint64 `json:"unknown_mode_rejects"`
	// Deciders lists the registered decider names in registration order.
	Deciders []string `json:"deciders"`
	Workers  int      `json:"workers"`
	// BatchLimit is the enforced /v1/classify/batch item limit.
	BatchLimit int        `json:"batch_limit"`
	Cache      memo.Stats `json:"cache"`
	// CachedCensuses counts census results held for instant serving.
	CachedCensuses int `json:"cached_censuses"`
	// Jobs counts background jobs by state.
	Jobs map[jobs.State]int `json:"jobs,omitempty"`
	// Snapshot is nil when the engine runs without snapshot support.
	Snapshot *SnapshotInfo `json:"snapshot,omitempty"`
	// Sealed is nil when no sealed landscape table is loaded.
	Sealed *SealedInfo `json:"sealed,omitempty"`
	// Runtime is the process-level snapshot (goroutines, heap, GC);
	// the full distributions live in /metricsz.
	Runtime obs.RuntimeInfo `json:"runtime"`
}

// SnapshotInfo describes the engine's snapshot state for /statsz.
type SnapshotInfo struct {
	Path string `json:"path,omitempty"`
	// Loaded reports the engine warm-started from a snapshot.
	Loaded             bool `json:"loaded"`
	LoadedMemoEntries  int  `json:"loaded_memo_entries,omitempty"`
	LoadedCensuses     int  `json:"loaded_censuses,omitempty"`
	LoadedPathCensuses int  `json:"loaded_path_censuses,omitempty"`
	SkippedRecords     int  `json:"skipped_records,omitempty"`
	// AgeSeconds is the age of the newest snapshot state: time since the
	// last save, or since the loaded snapshot was created when the engine
	// has not saved yet. Negative-free; 0 when no snapshot exists yet.
	AgeSeconds float64 `json:"age_seconds"`
}

// SealedInfo describes the loaded sealed landscape table for /statsz.
type SealedInfo struct {
	// Entries is the total precomputed verdict count across sections.
	Entries int `json:"entries"`
	// Sections lists the sealed problem spaces.
	Sections []store.SealedSectionInfo `json:"sections"`
	// Bytes is the artifact size the table was loaded from.
	Bytes int `json:"bytes"`
	// Mapped reports zero-copy serving: the table reads a memory-mapped
	// artifact rather than a heap copy (store.OpenSealedMapped).
	Mapped bool `json:"mapped"`
	// AgeSeconds is the time since the artifact was built (negative-free).
	AgeSeconds float64 `json:"age_seconds"`
	// Hits and Misses count sealed-tier lookups over exact-fingerprint
	// traffic; a miss fell through to the memo cache.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// Stats snapshots the serving counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Requests:           e.requests.Load(),
		Errors:             e.errors.Load(),
		Coalesced:          e.coalesced.Load(),
		ByDecider:          make(map[string]uint64, len(e.byDecider)),
		UnknownModeRejects: e.unknownMode.Load(),
		Deciders:           e.registry.Names(),
		Workers:            e.workers,
		BatchLimit:         e.maxBatch,
		Cache:              e.cache.Stats(),
	}
	for name, n := range e.byDecider {
		st.ByDecider[name] = n.Load()
	}
	if js := e.jobMgr.List(); len(js) > 0 {
		st.Jobs = map[jobs.State]int{}
		for _, j := range js {
			st.Jobs[j.State]++
		}
	}
	e.censusMu.Lock()
	st.CachedCensuses = len(e.censuses) + len(e.pathCensuses)
	if e.snapLoaded || e.snapshotPath != "" {
		info := &SnapshotInfo{
			Path:               e.snapshotPath,
			Loaded:             e.snapLoaded,
			LoadedMemoEntries:  e.snapMemo,
			LoadedCensuses:     e.snapCensuses,
			LoadedPathCensuses: e.snapPaths,
			SkippedRecords:     e.snapSkipped,
		}
		if !e.snapTime.IsZero() {
			if age := time.Since(e.snapTime).Seconds(); age > 0 {
				info.AgeSeconds = age
			}
		}
		st.Snapshot = info
	}
	e.censusMu.Unlock()
	if e.sealed != nil {
		info := &SealedInfo{
			Entries:  e.sealed.Len(),
			Sections: e.sealed.Sections(),
			Bytes:    e.sealed.SizeBytes(),
			Mapped:   e.sealed.Mapped(),
			Hits:     e.sealedHits.Load(),
			Misses:   e.sealedMisses.Load(),
		}
		if created := e.sealed.CreatedUnix(); created > 0 {
			if age := time.Since(time.Unix(created, 0)).Seconds(); age > 0 {
				info.AgeSeconds = age
			}
		}
		st.Sealed = info
	}
	st.Runtime = obs.ReadRuntimeInfo()
	return st
}
