// Package service is the batch classification engine behind the
// lclserver API: it fans classification requests out across a
// configurable worker pool, deduplicates identical in-flight requests
// (singleflight), and memoizes results in a sharded cache keyed by
// canonical fingerprint (internal/canon, internal/memo).
//
// The engine is sound because every classifier it dispatches to decides
// a property invariant under label isomorphism: the cycle classes of
// Chang–Studený–Suomela-style decidability (classify.Cycles, Section
// 1.4), the Theorem 1.1 tree gap pipeline (core.ClassifyOnTrees), path
// solvability with adversarial inputs (classify.PathsWithInputs), and
// order-invariant constant-round synthesis (enumerate.Decide) all depend
// only on the constraint structure of Π = (Σin, Σout, N, E, g), never on
// the alphabet spelling. Classification is therefore a pure function of
// the canonical form, and a cache hit returns exactly what recomputation
// would.
package service

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/canon"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/enumerate"
	"repro/internal/lcl"
	"repro/internal/memo"
)

// Mode selects which decision procedure a request runs.
type Mode string

// The four classification backends.
const (
	// ModeCycles decides O(1) / Θ(log* n) / Θ(n) / unsolvable on cycles
	// (input-free problems only).
	ModeCycles Mode = "cycles"
	// ModeTrees runs the Theorem 1.1 round-elimination gap pipeline on
	// trees and forests.
	ModeTrees Mode = "trees"
	// ModePathsInputs decides solvability on all input-labeled paths.
	ModePathsInputs Mode = "paths-inputs"
	// ModeSynthesize searches for an order-invariant constant-round
	// cycle algorithm (radii 0..MaxRadius).
	ModeSynthesize Mode = "synthesize"
)

// Defaults for per-mode search depths when a request leaves them zero.
const (
	DefaultMaxLevels = 6 // round-elimination levels for ModeTrees
	DefaultMaxRadius = 2 // synthesis radius cap for ModeSynthesize
)

// Request is one classification request.
type Request struct {
	Problem *lcl.Problem
	Mode    Mode
	// MaxLevels bounds the ModeTrees round-elimination depth
	// (DefaultMaxLevels when zero).
	MaxLevels int
	// MaxRadius bounds the ModeSynthesize radius search
	// (DefaultMaxRadius when zero).
	MaxRadius int
}

// SynthOutcome is the ModeSynthesize result.
type SynthOutcome struct {
	// Algorithm is the synthesized order-invariant algorithm (nil when
	// Found is false).
	Algorithm *enumerate.Synthesized
	// Radius is the smallest radius at which synthesis succeeded.
	Radius int
	// Found reports whether any radius <= MaxRadius admits an algorithm;
	// false is a proof of non-existence for the searched radii.
	Found bool
}

// Response is a classification result plus serving metadata. Exactly one
// of Cycles / Trees / Paths / Synth is set, matching Mode.
type Response struct {
	Mode        Mode
	Fingerprint uint64
	// CacheHit reports the result came from the memo cache.
	CacheHit bool
	// Coalesced reports the request waited on an identical in-flight
	// computation instead of running its own.
	Coalesced bool

	Cycles *classify.Result
	Trees  *core.TreeVerdict
	Paths  *classify.InputsResult
	Synth  *SynthOutcome
}

// Config configures an Engine.
type Config struct {
	// Workers is the size of the batch worker pool (<= 0 selects 4).
	Workers int
	// CacheShards and CacheCapacity size the memo cache (memo defaults
	// when zero). Cache overrides both with an externally shared cache.
	CacheShards   int
	CacheCapacity int
	Cache         *memo.Cache
}

// DefaultWorkers is the worker pool size when Config leaves it zero.
const DefaultWorkers = 4

// Engine is the classification service. It is safe for concurrent use.
type Engine struct {
	cache   *memo.Cache
	workers int

	jobs chan func()
	wg   sync.WaitGroup

	mu       sync.Mutex
	inflight map[uint64]*call
	closed   bool

	requests  atomic.Uint64
	errors    atomic.Uint64
	coalesced atomic.Uint64
	byMode    [4]atomic.Uint64
}

// call is one in-flight computation that later identical requests attach
// to. payload is the mode-specific result value — the same value the
// memo cache stores, so census runs (which cache *classify.Result under
// the cycles domain) and API traffic interoperate.
type call struct {
	done    chan struct{}
	payload any
	err     error
}

// New starts an engine with cfg's worker pool and cache.
func New(cfg Config) *Engine {
	workers := cfg.Workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	cache := cfg.Cache
	if cache == nil {
		cache = memo.New(cfg.CacheShards, cfg.CacheCapacity)
	}
	e := &Engine{
		cache:    cache,
		workers:  workers,
		jobs:     make(chan func()),
		inflight: map[uint64]*call{},
	}
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for job := range e.jobs {
				job()
			}
		}()
	}
	return e
}

// Close stops the worker pool; in-flight batch items finish first.
// Classify remains usable after Close (it runs on the caller's
// goroutine); ClassifyBatch does not.
func (e *Engine) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.jobs)
	}
	e.mu.Unlock()
	e.wg.Wait()
}

// modeIndex maps a Mode to its stats slot.
func modeIndex(m Mode) int {
	switch m {
	case ModeCycles:
		return 0
	case ModeTrees:
		return 1
	case ModePathsInputs:
		return 2
	default:
		return 3
	}
}

// domain returns the memo key domain for a request: the mode plus every
// parameter that can change the answer, so differently parameterized
// requests never alias.
func domain(req *Request) string {
	switch req.Mode {
	case ModeCycles:
		return enumerate.CycleDomain
	case ModeTrees:
		return fmt.Sprintf("classify/trees/%d", req.MaxLevels)
	case ModePathsInputs:
		return "classify/paths-inputs"
	default:
		return fmt.Sprintf("classify/synth/%d", req.MaxRadius)
	}
}

// normalize validates the request and fills parameter defaults.
func normalize(req *Request) error {
	if req.Problem == nil {
		return fmt.Errorf("service: nil problem")
	}
	switch req.Mode {
	case ModeCycles, ModeTrees, ModePathsInputs, ModeSynthesize:
	default:
		return fmt.Errorf("service: unknown mode %q", req.Mode)
	}
	if req.MaxLevels <= 0 {
		req.MaxLevels = DefaultMaxLevels
	}
	if req.MaxRadius <= 0 {
		req.MaxRadius = DefaultMaxRadius
	}
	return nil
}

// Classify serves one request: canonicalize, consult the cache, coalesce
// with an identical in-flight request if one exists, otherwise compute
// and populate the cache.
func (e *Engine) Classify(req Request) (*Response, error) {
	if err := normalize(&req); err != nil {
		e.errors.Add(1)
		return nil, err
	}
	e.requests.Add(1)
	e.byMode[modeIndex(req.Mode)].Add(1)

	form, err := canon.Canonicalize(req.Problem)
	if err != nil {
		e.errors.Add(1)
		return nil, err
	}
	fp := form.Fingerprint()
	// An inexact canonical form (permutation search over budget) is only
	// guaranteed invariant in one direction: isomorphic problems agree,
	// but refinement-indistinguishable non-isomorphic problems may
	// collide. Caching such a fingerprint could serve one problem the
	// other's answer, so compute directly instead.
	if !form.Exact {
		payload, err := compute(&req)
		if err != nil {
			e.errors.Add(1)
			return nil, err
		}
		return wrap(&req, fp, payload, false, false), nil
	}
	key := memo.Key(domain(&req), fp)

	// Singleflight: attach to an identical in-flight computation. The
	// cache is checked under the lock: the computing goroutine fills the
	// cache before unregistering its call, so a request arriving here
	// either sees the call or hits the cache — an identical request is
	// never computed twice (and each request counts at most one miss).
	// The critical section is a map lookup + LRU bump, dwarfed by the
	// canonicalization already done above.
	e.mu.Lock()
	if v, ok := e.cache.Get(key); ok {
		e.mu.Unlock()
		return wrap(&req, fp, v, true, false), nil
	}
	if c, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		<-c.done
		if c.err != nil {
			e.errors.Add(1)
			return nil, c.err
		}
		e.coalesced.Add(1)
		return wrap(&req, fp, c.payload, false, true), nil
	}
	c := &call{done: make(chan struct{})}
	e.inflight[key] = c
	e.mu.Unlock()

	c.payload, c.err = compute(&req)
	if c.err == nil {
		e.cache.Put(key, c.payload)
	} else {
		e.errors.Add(1)
	}
	e.mu.Lock()
	delete(e.inflight, key)
	e.mu.Unlock()
	close(c.done)

	if c.err != nil {
		return nil, c.err
	}
	return wrap(&req, fp, c.payload, false, false), nil
}

// compute dispatches to the mode's decision procedure and returns the
// mode-specific payload — the value memoized under the request's key.
func compute(req *Request) (any, error) {
	switch req.Mode {
	case ModeCycles:
		res, err := classify.Cycles(req.Problem)
		if err != nil {
			return nil, err
		}
		return res, nil
	case ModeTrees:
		v, err := core.ClassifyOnTrees(req.Problem, req.MaxLevels)
		if err != nil {
			return nil, err
		}
		return v, nil
	case ModePathsInputs:
		res, err := classify.PathsWithInputs(req.Problem)
		if err != nil {
			return nil, err
		}
		return res, nil
	default: // ModeSynthesize
		alg, radius, found, err := enumerate.Decide(req.Problem, req.MaxRadius)
		if err != nil {
			return nil, err
		}
		return &SynthOutcome{Algorithm: alg, Radius: radius, Found: found}, nil
	}
}

// wrap builds a per-request Response around a (possibly shared, always
// immutable) payload.
func wrap(req *Request, fp uint64, payload any, hit, coalesced bool) *Response {
	resp := &Response{Mode: req.Mode, Fingerprint: fp, CacheHit: hit, Coalesced: coalesced}
	switch v := payload.(type) {
	case *classify.Result:
		resp.Cycles = v
	case *core.TreeVerdict:
		resp.Trees = v
	case *classify.InputsResult:
		resp.Paths = v
	case *SynthOutcome:
		resp.Synth = v
	}
	return resp
}

// BatchItem pairs one batch response with its error; exactly one of the
// two is set.
type BatchItem struct {
	Response *Response
	Err      error
}

// ClassifyBatch fans the requests out across the worker pool and waits
// for all of them. Results are positional. Identical problems inside one
// batch resolve to a single computation via the cache and singleflight.
func (e *Engine) ClassifyBatch(reqs []Request) []BatchItem {
	out := make([]BatchItem, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		req := reqs[i]
		slot := &out[i]
		e.jobs <- func() {
			defer wg.Done()
			slot.Response, slot.Err = e.Classify(req)
		}
	}
	wg.Wait()
	return out
}

// Census runs the memoized parallel census (enumerate.RunWith) over the
// engine's cache and worker count. Census runs and ModeCycles traffic
// share memo keys, so each warms the other.
func (e *Engine) Census(k int, dedup bool) (*enumerate.Census, error) {
	return enumerate.RunWith(k, dedup, enumerate.RunOpts{Workers: e.workers, Cache: e.cache})
}

// Stats is a point-in-time engine snapshot.
type Stats struct {
	Requests  uint64          `json:"requests"`
	Errors    uint64          `json:"errors"`
	Coalesced uint64          `json:"coalesced"`
	ByMode    map[Mode]uint64 `json:"by_mode"`
	Workers   int             `json:"workers"`
	Cache     memo.Stats      `json:"cache"`
}

// Stats snapshots the serving counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Requests:  e.requests.Load(),
		Errors:    e.errors.Load(),
		Coalesced: e.coalesced.Load(),
		ByMode: map[Mode]uint64{
			ModeCycles:      e.byMode[0].Load(),
			ModeTrees:       e.byMode[1].Load(),
			ModePathsInputs: e.byMode[2].Load(),
			ModeSynthesize:  e.byMode[3].Load(),
		},
		Workers: e.workers,
		Cache:   e.cache.Stats(),
	}
}
