// The vectorized batch serving pipeline. A batch walks the same tiers
// as a single request (exact fingerprint → sealed table → memo cache →
// singleflight → compute) but amortizes every per-item cost across the
// batch: all items are canonicalized into one pooled scratch arena,
// deduplicated by memo key so each orbit is resolved once (the census
// insight from the orbit-representative enumeration, applied to live
// traffic), looked up through store.SealedTable.GetBatch and
// memo.Cache.GetBatch in fingerprint-sorted order, coalesced through
// the engine's singleflight map so concurrent batches share computes,
// and fanned back out positionally. Counter and response-flag semantics
// match the per-item path item for item (see the fan-out loop), so
// /statsz and /metricsz stay comparable whichever path served the
// traffic.
package service

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/decide"
	"repro/internal/lcl"
	"repro/internal/memo"
	"repro/internal/obs"
)

// DefaultMaxBatch is the /v1/classify/batch item limit when Config
// leaves MaxBatch zero. It bounds the pooled scratch arenas and the
// per-request work one HTTP call can demand.
const DefaultMaxBatch = 4096

// Per-item pipeline states (batchScratch.state).
const (
	// itemErrPre: rejected before fingerprinting (unknown mode or
	// Normalize failure) — counted as an error only, never as a served
	// request, exactly like the per-item path.
	itemErrPre uint8 = iota + 1
	// itemErrFp: fingerprinting failed — counted as a served request
	// that errored.
	itemErrFp
	// itemInexact: inexact fingerprint; computed individually and never
	// cached (one-directional invariance, see ClassifyCtx).
	itemInexact
	// itemExact: exact fingerprint; participates in dedup and the
	// sealed/memo/singleflight tiers.
	itemExact
)

// Per-unique-key resolution tiers (batchScratch.tier).
const (
	tierNone uint8 = iota
	// tierSealed: served by the read-only sealed landscape table.
	tierSealed
	// tierMemo: served by the memo cache.
	tierMemo
	// tierOwned: this batch registered the in-flight call and computed.
	tierOwned
	// tierJoined: coalesced onto another caller's in-flight computation.
	tierJoined
)

// batchIdent is the identity-prefilter key: two items that agree on it
// are literal duplicates (same problem pointers, same raw parameters),
// so the second replays the first's entire stage-1 outcome — mode
// resolution, normalization, and fingerprint are all pure functions of
// the request — without re-running any of it. The HTTP handler decodes
// duplicate raw problem payloads to one shared *lcl.Problem precisely
// to light this up.
type batchIdent struct {
	mode      string
	problem   *lcl.Problem
	rooted    *decide.RootedProblem
	maxLevels int
	maxRadius int
	dims      int
}

// batchScratch is the pooled per-batch arena: every per-item and
// per-unique-key slice the pipeline needs, reused across batches so a
// steady-state batch allocates nothing beyond what its misses compute.
type batchScratch struct {
	// Per-item (parallel to the request slice).
	reqs  []Request
	ds    []decide.Decider
	fps   []uint64
	keys  []uint64
	state []uint8
	errs  []error
	group []int32 // index into the unique arrays; -1 = not grouped
	dupOf []int32 // identity-prefilter representative; -1 = first occurrence
	vals1 []any   // inexact items' computed payloads
	ident map[batchIdent]int32

	// Per-unique-key (built by the dedup stage, fingerprint-sorted).
	order    []batchKey
	uniqKeys []uint64
	uniqRep  []int32
	uniqVals []any
	uniqIdx  []int32 // sealed entry index, -1 = miss
	uniqTier []uint8
	uniqErr  []error
	uniqVerd []*decide.Verdict
	calls    []*call
	missKeys []uint64
	missVals []any
	missPos  []int32

	// Positional results handed to the caller.
	resps []Response
	items []BatchItem

	// wg synchronizes the compute stage. It lives in the arena because
	// the compute closures capture it: a local would escape and cost an
	// allocation even on batches that compute nothing.
	wg sync.WaitGroup
}

var batchScratchPool = sync.Pool{
	New: func() any { return &batchScratch{ident: map[batchIdent]int32{}} },
}

// reset sizes every per-item slice to n, clears retained references
// from the previous batch, and empties the per-unique slices.
func (sc *batchScratch) reset(n int) {
	if cap(sc.reqs) < n {
		sc.reqs = make([]Request, n)
		sc.ds = make([]decide.Decider, n)
		sc.fps = make([]uint64, n)
		sc.keys = make([]uint64, n)
		sc.state = make([]uint8, n)
		sc.errs = make([]error, n)
		sc.group = make([]int32, n)
		sc.dupOf = make([]int32, n)
		sc.vals1 = make([]any, n)
	}
	sc.reqs = sc.reqs[:n]
	sc.ds = sc.ds[:n]
	sc.fps = sc.fps[:n]
	sc.keys = sc.keys[:n]
	sc.state = sc.state[:n]
	sc.errs = sc.errs[:n]
	sc.group = sc.group[:n]
	sc.dupOf = sc.dupOf[:n]
	sc.vals1 = sc.vals1[:n]
	clear(sc.reqs)
	clear(sc.ds)
	clear(sc.state)
	clear(sc.errs)
	clear(sc.vals1)
	clear(sc.ident)
	// Drop references retained by the previous batch's unique set, then
	// reuse the backing arrays.
	clear(sc.uniqVals[:cap(sc.uniqVals)])
	clear(sc.uniqErr[:cap(sc.uniqErr)])
	clear(sc.uniqVerd[:cap(sc.uniqVerd)])
	clear(sc.calls[:cap(sc.calls)])
	clear(sc.missVals[:cap(sc.missVals)])
	sc.order = sc.order[:0]
	sc.uniqKeys = sc.uniqKeys[:0]
	sc.uniqRep = sc.uniqRep[:0]
	sc.uniqVals = sc.uniqVals[:0]
	sc.uniqIdx = sc.uniqIdx[:0]
	sc.uniqTier = sc.uniqTier[:0]
	sc.uniqErr = sc.uniqErr[:0]
	sc.uniqVerd = sc.uniqVerd[:0]
	sc.calls = sc.calls[:0]
	sc.missKeys = sc.missKeys[:0]
	sc.missVals = sc.missVals[:0]
	sc.missPos = sc.missPos[:0]
	if cap(sc.resps) < n {
		sc.resps = make([]Response, n)
		sc.items = make([]BatchItem, n)
	}
	sc.resps = sc.resps[:n]
	sc.items = sc.items[:n]
	clear(sc.resps)
	clear(sc.items)
}

// BatchStats summarizes one Batch.Classify run.
type BatchStats struct {
	// Items is the batch size; Unique is the number of distinct memo
	// keys among exact-fingerprint items; Deduped counts items served by
	// fanning out another item's result (Items with exact fingerprints
	// minus Unique).
	Items   int `json:"items"`
	Unique  int `json:"unique"`
	Deduped int `json:"deduped"`
	// Per-item tier tallies: where each successful item's result came
	// from. Coalesced counts items that shared a computation (intra-batch
	// duplicates of a computed key plus joins onto other callers'
	// in-flight computes); Computed counts the computations this batch
	// ran itself (owned keys plus inexact items).
	SealedHits int `json:"sealed_hits"`
	MemoHits   int `json:"memo_hits"`
	Computed   int `json:"computed"`
	Coalesced  int `json:"coalesced"`
	Inexact    int `json:"inexact"`
	Errors     int `json:"errors"`
}

// Batch is a reusable batch-classification context wrapping the pooled
// scratch arena. It is NOT safe for concurrent use; acquire one per
// goroutine with Engine.NewBatch. Results returned by Classify point
// into the arena and are valid only until the next Classify or Release
// — callers that retain results must copy them (or use
// Engine.ClassifyBatchCtx, which does).
type Batch struct {
	e     *Engine
	sc    *batchScratch
	stats BatchStats
}

// NewBatch acquires a batch context backed by a pooled scratch arena.
// Callers must Release it when done.
func (e *Engine) NewBatch() *Batch {
	return &Batch{e: e, sc: batchScratchPool.Get().(*batchScratch)}
}

// Release returns the arena to the pool. The Batch and any results from
// its Classify calls are invalid afterwards. Release is idempotent.
func (b *Batch) Release() {
	if b.sc == nil {
		return
	}
	batchScratchPool.Put(b.sc)
	b.sc = nil
}

// Stats returns the summary of the most recent Classify call.
func (b *Batch) Stats() BatchStats { return b.stats }

// Classify serves one batch through the vectorized pipeline. Results
// are positional and valid until the next Classify or Release. See
// Engine.ClassifyBatchCtx for the pipeline contract.
func (b *Batch) Classify(ctx context.Context, reqs []Request) []BatchItem {
	e, sc := b.e, b.sc
	n := len(reqs)
	if e.obs != nil {
		e.obs.batch.Observe(float64(n))
	}
	b.stats = BatchStats{Items: n}
	sc.reset(n)
	if n == 0 {
		return sc.items
	}
	tr := obs.TraceFrom(ctx)
	var batchStart time.Time
	if e.obs != nil {
		batchStart = time.Now()
	}

	// Stage 1: resolve, normalize, fingerprint. The identity prefilter
	// spots literal duplicates (same problem pointers, same normalized
	// parameters) and replays the first occurrence's fingerprint, so a
	// duplicate-heavy batch canonicalizes each distinct request once.
	var spanStart time.Time
	if tr != nil {
		spanStart = time.Now()
	}
	exactItems := 0
	for i := range reqs {
		sc.reqs[i] = reqs[i]
		sc.group[i] = -1
		sc.dupOf[i] = -1
		// Identity prefilter first, on the raw request: a literal
		// duplicate replays its first occurrence's entire stage-1 outcome
		// (resolution, normalization, fingerprinting — all pure functions
		// of the request) and skips the registry lookup and the
		// canonicalization, the dominant per-item costs of a
		// duplicate-heavy batch. Counters replay per item, matching the
		// per-item path.
		id := batchIdent{
			mode:      reqs[i].Mode,
			problem:   reqs[i].Problem,
			rooted:    reqs[i].Rooted,
			maxLevels: reqs[i].MaxLevels,
			maxRadius: reqs[i].MaxRadius,
			dims:      reqs[i].Dims,
		}
		if j, ok := sc.ident[id]; ok {
			sc.ds[i] = sc.ds[j]
			sc.state[i] = sc.state[j]
			sc.fps[i] = sc.fps[j]
			sc.keys[i] = sc.keys[j]
			switch sc.state[j] {
			case itemErrPre:
				// Unknown mode or Normalize rejection: error only, never a
				// served request (ds is nil exactly when the mode was
				// unknown).
				if sc.ds[j] == nil {
					e.unknownMode.Add(1)
				}
				e.errors.Add(1)
				sc.errs[i] = sc.errs[j]
			case itemErrFp:
				e.requests.Add(1)
				if counter, ok := e.byDecider[sc.ds[j].Name()]; ok {
					counter.Add(1)
				}
				e.errors.Add(1)
				sc.errs[i] = sc.errs[j]
			case itemInexact:
				e.requests.Add(1)
				if counter, ok := e.byDecider[sc.ds[j].Name()]; ok {
					counter.Add(1)
				}
				// Inexact items compute individually (never cached); reuse
				// the representative's normalized request.
				sc.reqs[i] = sc.reqs[j]
			case itemExact:
				e.requests.Add(1)
				if counter, ok := e.byDecider[sc.ds[j].Name()]; ok {
					counter.Add(1)
				}
				sc.dupOf[i] = j
				exactItems++
			}
			continue
		}
		sc.ident[id] = int32(i)
		d, ok := e.registry.Get(sc.reqs[i].Mode)
		if !ok {
			e.unknownMode.Add(1)
			e.errors.Add(1)
			sc.errs[i] = fmt.Errorf("service: unknown mode %q (registered: %s)",
				sc.reqs[i].Mode, strings.Join(e.registry.Names(), ", "))
			sc.state[i] = itemErrPre
			continue
		}
		sc.ds[i] = d
		if err := d.Normalize(&sc.reqs[i]); err != nil {
			e.errors.Add(1)
			sc.errs[i] = err
			sc.state[i] = itemErrPre
			continue
		}
		e.requests.Add(1)
		if counter, ok := e.byDecider[d.Name()]; ok {
			counter.Add(1)
		}
		fp, exact, err := d.Fingerprint(&sc.reqs[i])
		if err != nil {
			e.errors.Add(1)
			sc.errs[i] = err
			sc.state[i] = itemErrFp
			continue
		}
		sc.fps[i] = fp
		if !exact {
			sc.state[i] = itemInexact
			continue
		}
		sc.state[i] = itemExact
		sc.keys[i] = memo.Key(d.MemoDomain(&sc.reqs[i]), fp)
		exactItems++
	}
	tr.Record("batch-fingerprint", spanStart)

	// Stage 2: dedup by memo key, fingerprint-sorted. Sorting gives the
	// unique set a deterministic probe order for the batched lookups
	// below and makes duplicate detection a linear adjacency scan.
	if tr != nil {
		spanStart = time.Now()
	}
	// Identity duplicates stay out of the sort: they inherit their
	// representative's group below, so the sort scales with the distinct
	// requests, not the batch size. (The earliest item holding a key is
	// always an identity representative — a duplicate's first occurrence
	// precedes it with the same key — so the rep-is-earliest invariant
	// survives the exclusion.)
	for i := 0; i < n; i++ {
		if sc.state[i] == itemExact && sc.dupOf[i] < 0 {
			sc.order = append(sc.order, batchKey{key: sc.keys[i], item: int32(i)})
		}
	}
	// cmpBatchKey is a package-level function so the sort allocates
	// nothing (a capturing closure would escape into the generic sort).
	slices.SortFunc(sc.order, cmpBatchKey)
	for _, ki := range sc.order {
		i := ki.item
		if len(sc.uniqKeys) == 0 || sc.uniqKeys[len(sc.uniqKeys)-1] != ki.key {
			sc.uniqKeys = append(sc.uniqKeys, ki.key)
			sc.uniqRep = append(sc.uniqRep, i)
			sc.uniqVals = append(sc.uniqVals, nil)
			sc.uniqIdx = append(sc.uniqIdx, -1)
			sc.uniqTier = append(sc.uniqTier, tierNone)
			sc.uniqErr = append(sc.uniqErr, nil)
			sc.uniqVerd = append(sc.uniqVerd, nil)
			sc.calls = append(sc.calls, nil)
		}
		sc.group[i] = int32(len(sc.uniqKeys) - 1)
	}
	for i := 0; i < n; i++ {
		if j := sc.dupOf[i]; j >= 0 {
			sc.group[i] = sc.group[j]
		}
	}
	uniq := len(sc.uniqKeys)
	b.stats.Unique = uniq
	b.stats.Deduped = exactItems - uniq
	tr.Record("batch-dedup", spanStart)
	if e.obs != nil && exactItems > 0 {
		e.obs.batchDedup.Observe(float64(exactItems-uniq) / float64(exactItems))
	}

	// Stage 3: sealed tier, one lock-free multi-probe sweep over the
	// sorted unique keys. Entry indices feed the engine's memoized
	// verdict wrappers, so a sealed-hit item allocates nothing.
	sealedUnique := 0
	if e.sealed != nil && uniq > 0 {
		if tr != nil {
			spanStart = time.Now()
		}
		sealedUnique = e.sealed.GetBatch(sc.uniqKeys, sc.uniqVals, sc.uniqIdx)
		tr.Record("batch-sealed-get", spanStart)
		for u := 0; u < uniq; u++ {
			if sc.uniqIdx[u] >= 0 {
				sc.uniqTier[u] = tierSealed
			}
		}
	}

	// Stage 4: memo tier + singleflight for the residual misses, under
	// one e.mu acquisition for the whole batch. The memo lookup happens
	// under the lock — the same discipline as the per-item path — so an
	// owned key's computation is registered before anyone else can race
	// it, each unique key counts at most one memo miss, and joiners
	// either see the in-flight call or hit the cache it filled.
	memoUnique, ownedUnique, joinedUnique := 0, 0, 0
	for u := 0; u < uniq; u++ {
		if sc.uniqTier[u] == tierNone {
			sc.missKeys = append(sc.missKeys, sc.uniqKeys[u])
			sc.missVals = append(sc.missVals, nil)
			sc.missPos = append(sc.missPos, int32(u))
		}
	}
	if len(sc.missKeys) > 0 {
		if tr != nil {
			spanStart = time.Now()
		}
		e.mu.Lock()
		e.cache.GetBatch(sc.missKeys, sc.missVals)
		for j, u := range sc.missPos {
			if sc.missVals[j] != nil {
				sc.uniqVals[u] = sc.missVals[j]
				sc.uniqTier[u] = tierMemo
				memoUnique++
				continue
			}
			key := sc.uniqKeys[u]
			if c, ok := e.inflight[key]; ok {
				sc.calls[u] = c
				sc.uniqTier[u] = tierJoined
				joinedUnique++
				continue
			}
			c := &call{done: make(chan struct{})}
			e.inflight[key] = c
			sc.calls[u] = c
			sc.uniqTier[u] = tierOwned
			ownedUnique++
		}
		e.mu.Unlock()
		tr.Record("batch-memo-get", spanStart)
	}
	if e.obs != nil && uniq > 0 {
		if e.sealed != nil {
			e.obs.batchSealedRate.Observe(float64(sealedUnique) / float64(uniq))
		}
		e.obs.batchMemoRate.Observe(float64(memoUnique) / float64(uniq))
	}

	// Stage 5: compute. Owned keys and inexact items fan out across the
	// worker pool; joined keys wait on their foreign computations.
	// Owned computes run under the background context (coalescing
	// callers must not be failed by this caller hanging up) and fill the
	// cache before unregistering — the singleflight invariant.
	if tr != nil {
		spanStart = time.Now()
	}
	wg := &sc.wg
	if ownedUnique > 0 {
		for u := 0; u < uniq; u++ {
			if sc.uniqTier[u] != tierOwned {
				continue
			}
			wg.Add(1)
			u := u
			e.jobs <- func() {
				defer wg.Done()
				rep := sc.uniqRep[u]
				c := sc.calls[u]
				c.payload, c.err = sc.ds[rep].Compute(context.Background(), &sc.reqs[rep])
				if c.err == nil {
					e.cache.Put(sc.uniqKeys[u], c.payload)
				} else {
					e.errors.Add(1)
				}
				e.mu.Lock()
				delete(e.inflight, sc.uniqKeys[u])
				e.mu.Unlock()
				close(c.done)
			}
		}
	}
	for i := 0; i < n; i++ {
		if sc.state[i] != itemInexact {
			continue
		}
		wg.Add(1)
		i := i
		e.jobs <- func() {
			defer wg.Done()
			// Inexact fingerprints are never cached or coalesced; each
			// item computes under the caller's context, like the per-item
			// path.
			payload, err := sc.ds[i].Compute(ctx, &sc.reqs[i])
			if err != nil {
				e.errors.Add(1)
				sc.errs[i] = err
				return
			}
			sc.vals1[i] = payload
		}
	}
	wg.Wait()
	for u := 0; u < uniq; u++ {
		switch sc.uniqTier[u] {
		case tierOwned:
			c := sc.calls[u]
			if c.err != nil {
				sc.uniqErr[u] = c.err
			} else {
				sc.uniqVals[u] = c.payload
			}
		case tierJoined:
			c := sc.calls[u]
			<-c.done
			if c.err != nil {
				sc.uniqErr[u] = c.err
			} else {
				sc.uniqVals[u] = c.payload
			}
		}
	}
	tr.Record("batch-compute", spanStart)

	// Stage 6: wrap each unique payload once. Verdicts (and their
	// details) are immutable wire views, so duplicates share them;
	// sealed entries memoize theirs on the engine for the table's
	// lifetime. Wrap failures surface per item below with the per-item
	// path's error wrapping and counting.
	if tr != nil {
		spanStart = time.Now()
	}
	for u := 0; u < uniq; u++ {
		if sc.uniqErr[u] != nil {
			continue
		}
		d := sc.ds[sc.uniqRep[u]]
		var v *decide.Verdict
		var err error
		if sc.uniqTier[u] == tierSealed {
			v, err = e.sealedVerdict(d, sc.uniqIdx[u], sc.uniqVals[u])
		} else {
			v, err = d.WrapPayload(sc.uniqVals[u])
		}
		if err != nil {
			sc.uniqErr[u] = fmt.Errorf("service: %s: %w", d.Name(), err)
			// Distinguish from compute errors: those were already counted
			// once by the computing goroutine (the rep's share); wrap
			// errors are counted per item in the fan-out.
			sc.uniqVerd[u] = nil
			sc.uniqTier[u] |= tierWrapErr
			continue
		}
		sc.uniqVerd[u] = v
	}
	tr.Record("batch-wrap", spanStart)

	// Stage 7: fan out positionally, replaying the per-item path's
	// counter and flag semantics for every item.
	for i := 0; i < n; i++ {
		switch sc.state[i] {
		case itemErrPre:
			sc.items[i].Err = sc.errs[i]
			b.stats.Errors++
		case itemErrFp:
			sc.items[i].Err = sc.errs[i]
			b.stats.Errors++
			e.observeRequestAt(sc.reqs[i].Mode, batchStart, false, sc.errs[i])
		case itemInexact:
			if sc.errs[i] != nil {
				sc.items[i].Err = sc.errs[i]
				b.stats.Errors++
				e.observeRequestAt(sc.reqs[i].Mode, batchStart, false, sc.errs[i])
				continue
			}
			v, err := sc.ds[i].WrapPayload(sc.vals1[i])
			if err != nil {
				err = fmt.Errorf("service: %s: %w", sc.ds[i].Name(), err)
				e.errors.Add(1)
				sc.items[i].Err = err
				b.stats.Errors++
				e.observeRequestAt(sc.reqs[i].Mode, batchStart, false, err)
				continue
			}
			b.stats.Computed++
			sc.resps[i] = Response{
				Mode:        sc.reqs[i].Mode,
				Fingerprint: sc.fps[i],
				Class:       v.Class,
				Detail:      v.Detail,
				Payload:     sc.vals1[i],
			}
			sc.items[i].Response = &sc.resps[i]
			e.observeRequestAt(sc.reqs[i].Mode, batchStart, false, nil)
		case itemExact:
			u := sc.group[i]
			tier := sc.uniqTier[u] &^ tierWrapErr
			name := sc.ds[i].Name()
			// Every exact item probed the sealed tier (as one sweep), so
			// each counts a sealed outcome, like the per-item path.
			if e.sealed != nil {
				if tier == tierSealed {
					e.sealedHits.Add(1)
					e.observeSealed(name, true)
				} else {
					e.sealedMisses.Add(1)
					e.observeSealed(name, false)
				}
			}
			if err := sc.uniqErr[u]; err != nil {
				// The computing goroutine counted the rep's error for
				// owned compute failures; every other item (duplicates,
				// joins, wrap failures) counts its own.
				owned := tier == tierOwned && sc.uniqTier[u]&tierWrapErr == 0
				if !(owned && sc.uniqRep[u] == int32(i)) {
					e.errors.Add(1)
				}
				sc.items[i].Err = err
				b.stats.Errors++
				e.observeRequestAt(name, batchStart, false, err)
				continue
			}
			v := sc.uniqVerd[u]
			hit, coalesced, sealedFlag := false, false, false
			switch tier {
			case tierSealed:
				hit, sealedFlag = true, true
				b.stats.SealedHits++
			case tierMemo:
				hit = true
				b.stats.MemoHits++
			case tierOwned:
				if sc.uniqRep[u] == int32(i) {
					b.stats.Computed++
				} else {
					coalesced = true
					e.coalesced.Add(1)
					b.stats.Coalesced++
				}
			case tierJoined:
				coalesced = true
				e.coalesced.Add(1)
				b.stats.Coalesced++
			}
			sc.resps[i] = Response{
				Mode:        sc.reqs[i].Mode,
				Fingerprint: sc.fps[i],
				CacheHit:    hit,
				Coalesced:   coalesced,
				Sealed:      sealedFlag,
				Class:       v.Class,
				Detail:      v.Detail,
				Payload:     sc.uniqVals[u],
			}
			sc.items[i].Response = &sc.resps[i]
			e.observeRequestAt(name, batchStart, hit, nil)
		}
	}
	b.stats.Inexact = 0
	for i := 0; i < n; i++ {
		if sc.state[i] == itemInexact {
			b.stats.Inexact++
		}
	}
	if e.obs != nil {
		e.obs.observeBatchItems(&b.stats)
	}
	return sc.items
}

// batchKey pairs an item's memo key with its batch position for the
// dedup sort: items order by key (the deterministic probe order for the
// batched lookups) and by position within a key, so the dedup
// representative is always the earliest occurrence.
type batchKey struct {
	key  uint64
	item int32
}

func cmpBatchKey(a, b batchKey) int {
	switch {
	case a.key < b.key:
		return -1
	case a.key > b.key:
		return 1
	default:
		return int(a.item - b.item)
	}
}

// tierWrapErr marks a unique key whose payload failed WrapPayload (OR'd
// onto the tier so the fan-out can tell wrap failures — counted per
// item — from compute failures, whose rep share was already counted).
const tierWrapErr uint8 = 0x80

// observeRequestAt is observeRequest guarded for uninstrumented
// engines (batchStart is only taken when obs is on).
func (e *Engine) observeRequestAt(decider string, start time.Time, hit bool, err error) {
	if e.obs == nil {
		return
	}
	e.observeRequest(decider, start, hit, err)
}

// sealedVerdict returns the wrapped verdict for sealed entry idx,
// memoizing it on the engine: sealed entries are a fixed immutable set
// and WrapPayload is a pure function of the payload, so each entry is
// wrapped at most a handful of times (racing fills store the same
// value) and sealed-hit batch items allocate nothing at steady state.
func (e *Engine) sealedVerdict(d decide.Decider, idx int32, payload any) (*decide.Verdict, error) {
	if idx < 0 || int(idx) >= len(e.sealedVerdicts) {
		return d.WrapPayload(payload)
	}
	slot := &e.sealedVerdicts[idx]
	if v := slot.Load(); v != nil {
		return v, nil
	}
	v, err := d.WrapPayload(payload)
	if err != nil {
		return nil, err
	}
	slot.Store(v)
	return v, nil
}

// ClassifyBatchCtx serves one batch through the vectorized pipeline:
// one pooled scratch arena canonicalizes every item, items are
// deduplicated by memo key so each orbit classifies once, the
// deduplicated set resolves through SealedTable.GetBatch and
// memo.Cache.GetBatch in fingerprint-sorted order, residual misses
// coalesce through the engine singleflight (shared with concurrent
// batches and single requests), and results fan back out positionally.
// Results are freshly allocated and safe to retain; latency-sensitive
// callers that control result lifetime use Engine.NewBatch to skip the
// copy. Not usable after Close.
func (e *Engine) ClassifyBatchCtx(ctx context.Context, reqs []Request) []BatchItem {
	b := e.NewBatch()
	defer b.Release()
	items := b.Classify(ctx, reqs)
	out := make([]BatchItem, len(items))
	resps := make([]Response, len(items))
	for i := range items {
		if items[i].Response != nil {
			resps[i] = *items[i].Response
			out[i].Response = &resps[i]
		}
		out[i].Err = items[i].Err
	}
	return out
}

// ClassifyBatch is ClassifyBatchCtx under the background context.
// Results are positional; identical problems inside one batch resolve
// to a single computation.
func (e *Engine) ClassifyBatch(reqs []Request) []BatchItem {
	return e.ClassifyBatchCtx(context.Background(), reqs)
}

// MaxBatch returns the configured batch item limit (DefaultMaxBatch
// unless Config.MaxBatch overrode it). The HTTP layer rejects larger
// /v1/classify/batch requests with 413.
func (e *Engine) MaxBatch() int { return e.maxBatch }
