package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/decide"
	"repro/internal/enumerate"
	"repro/internal/jobs"
	"repro/internal/store"
)

// waitJob polls until the job reaches a terminal state.
func waitJob(t *testing.T, e *Engine, id string) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := e.GetJob(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if j.State.Terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobs.Job{}
}

func TestSubmitJobValidation(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	bad := []jobs.Spec{
		{Type: "nope"},
		{Type: JobCensus, K: 0},
		{Type: JobCensus, K: 4},
		{Type: JobPathCensus, K: 9},
		{Type: JobRootedCensus, Delta: 0, K: 1},
		{Type: JobRootedCensus, Delta: 2, K: 3},
		{Type: JobLandscape, Sizes: []int{2}},
	}
	for _, spec := range bad {
		if _, err := e.SubmitJob(spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}

func TestCensusJobMatchesDirectRun(t *testing.T) {
	e := New(Config{Workers: 4})
	defer e.Close()
	j, err := e.SubmitJob(jobs.Spec{Type: JobCensus, K: 2, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	got := waitJob(t, e, j.ID)
	if got.State != jobs.StateDone {
		t.Fatalf("job state %s (error %q)", got.State, got.Error)
	}
	var res struct {
		K                  int            `json:"k"`
		TotalProblems      int            `json:"total_problems"`
		IsomorphismClasses int            `json:"isomorphism_classes"`
		Classes            map[string]int `json:"classes"`
		GapHolds           bool           `json:"gap_holds"`
	}
	if err := json.Unmarshal(got.Result, &res); err != nil {
		t.Fatal(err)
	}
	ref, err := enumerate.Run(2, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalProblems != 64 || res.IsomorphismClasses != len(ref.Entries) || !res.GapHolds {
		t.Errorf("census job result %+v", res)
	}
	for cl, n := range ref.RawByClass {
		if res.Classes[cl.String()] != n {
			t.Errorf("class %s: job %d, direct %d", cl, res.Classes[cl.String()], n)
		}
	}
	// The job's census is now served by the synchronous endpoint too.
	if c, err := e.Census(2, true); err != nil || len(c.Entries) != len(ref.Entries) {
		t.Errorf("census not cached by job: %v", err)
	}
}

func TestPathAndRootedAndLandscapeJobs(t *testing.T) {
	e := New(Config{Workers: 4})
	defer e.Close()

	pj, err := e.SubmitJob(jobs.Spec{Type: JobPathCensus, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	rj, err := e.SubmitJob(jobs.Spec{Type: JobRootedCensus, Delta: 2, K: 1, MaxRadius: 1})
	if err != nil {
		t.Fatal(err)
	}
	lj, err := e.SubmitJob(jobs.Spec{Type: JobLandscape, Sizes: []int{16, 64}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	got := waitJob(t, e, pj.ID)
	if got.State != jobs.StateDone {
		t.Fatalf("path census job: %s (%s)", got.State, got.Error)
	}
	var pres struct {
		TotalProblems int `json:"total_problems"`
		SolvableAll   int `json:"solvable_all"`
	}
	json.Unmarshal(got.Result, &pres)
	if pres.TotalProblems != 8 { // 2^k endpoint masks x 2^PairCount(1) x 2^PairCount(1)
		t.Errorf("path census total %d, want 8", pres.TotalProblems)
	}

	got = waitJob(t, e, rj.ID)
	if got.State != jobs.StateDone {
		t.Fatalf("rooted census job: %s (%s)", got.State, got.Error)
	}
	var rres struct {
		TotalProblems int            `json:"total_problems"`
		Classes       map[string]int `json:"classes"`
	}
	json.Unmarshal(got.Result, &rres)
	if rres.TotalProblems != 8 {
		t.Errorf("rooted census total %d, want 8", rres.TotalProblems)
	}

	got = waitJob(t, e, lj.ID)
	if got.State != jobs.StateDone {
		t.Fatalf("landscape job: %s (%s)", got.State, got.Error)
	}
	var lres struct {
		Panels []struct {
			Title  string `json:"Title"`
			Series []struct {
				Points []struct{ N, Cost int } `json:"Points"`
			} `json:"Series"`
		} `json:"panels"`
	}
	if err := json.Unmarshal(got.Result, &lres); err != nil {
		t.Fatal(err)
	}
	if len(lres.Panels) != 4 {
		t.Fatalf("landscape job produced %d panels, want 4", len(lres.Panels))
	}
	for _, p := range lres.Panels[:1] { // trees panel measured both sizes
		for _, s := range p.Series {
			if len(s.Points) != 2 {
				t.Errorf("panel %q series has %d points, want 2", p.Title, len(s.Points))
			}
		}
	}
}

// TestCensusJobResumeIdenticalAfterInterrupt is the acceptance test for
// the checkpoint/resume contract: a census job interrupted mid-run by a
// process shutdown resumes from the last checkpoint in a new engine and
// produces a result identical to an uninterrupted run — while provably
// skipping the work the first process already did.
func TestCensusJobResumeIdenticalAfterInterrupt(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "snap.lclsnap")
	ledgerPath := filepath.Join(dir, "ledger.json")

	// Reference: one uninterrupted run, no engine involved.
	ref, err := enumerate.Run(3, false)
	if err != nil {
		t.Fatal(err)
	}

	// Process 1: submit the k=3 census job, watch until it is partway
	// through, then shut down — the moral equivalent of kill -TERM.
	e1 := New(Config{Workers: 2, SnapshotPath: snapPath, JobsLedgerPath: ledgerPath})
	job, err := e1.SubmitJob(jobs.Spec{Type: JobCensus, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancelSub, err := e1.WatchJob(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(60 * time.Second)
watch:
	for {
		select {
		case ev := <-ch:
			if ev.Job.State.Terminal() {
				t.Fatalf("job finished (%s) before it could be interrupted", ev.Job.State)
			}
			if ev.Job.Progress.Done >= 200 {
				break watch
			}
		case <-deadline:
			t.Fatal("job never reached 200 classified problems")
		}
	}
	cancelSub()
	e1.Close() // interrupts the job, takes a final checkpoint, saves the ledger

	j1, _ := e1.GetJob(job.ID)
	if j1.State != jobs.StateInterrupted {
		t.Fatalf("job state after shutdown %s, want interrupted", j1.State)
	}

	// The checkpoint captured the partial work: every decision the run
	// had made by export time is persisted. The absolute count is
	// scheduling-dependent — without dedup many of the >= 200 classified
	// problems share a fingerprint — so compare against the cache's put
	// counter rather than a constant. Up to one in-flight classification
	// per worker may land its put after the final export, so allow that
	// much lag.
	puts := e1.Stats().Cache.Puts
	snap, err := store.Load(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	const censusWorkers = 2 // Config.Workers above
	if got := uint64(len(snap.Memo)); got == 0 || got > puts || puts-got > censusWorkers {
		t.Fatalf("checkpoint persisted %d memo entries, want ~%d (cache puts, <= %d lag)", got, puts, censusWorkers)
	}

	// Process 2: restore snapshot + ledger; the interrupted job
	// re-enqueues itself and runs to completion.
	ledger, err := jobs.LoadLedger(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(Config{
		Workers:        2,
		Snapshot:       snap,
		SnapshotPath:   snapPath,
		JobsLedgerPath: ledgerPath,
		JobsLedger:     ledger,
	})
	defer e2.Close()
	got := waitJob(t, e2, job.ID)
	if got.State != jobs.StateDone {
		t.Fatalf("resumed job state %s (error %q)", got.State, got.Error)
	}
	if got.Attempts != 2 {
		t.Errorf("resumed job attempts %d, want 2", got.Attempts)
	}

	// Warm resume, not a cold redo: the checkpointed decisions were
	// served from the cache.
	if hits := e2.Stats().Cache.Hits; hits < 200 {
		t.Errorf("resumed run hit the cache %d times, want >= 200", hits)
	}

	// The resumed census is identical to the uninterrupted run, row by
	// row: same problems in the same order with the same classification,
	// period, and fingerprint. Witness strings are compared for presence
	// only: the memo cache deliberately shares one result across a whole
	// label-isomorphism class, so which member's diagnostic spelling it
	// carries depends on worker scheduling — in interrupted and
	// uninterrupted runs alike.
	c, err := e2.Census(3, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Entries) != len(ref.Entries) {
		t.Fatalf("resumed census has %d entries, reference %d", len(c.Entries), len(ref.Entries))
	}
	for i := range ref.Entries {
		a, b := &ref.Entries[i], &c.Entries[i]
		if a.N2Mask != b.N2Mask || a.EMask != b.EMask || a.Orbit != b.Orbit ||
			a.Class != b.Class || a.Period != b.Period ||
			a.Fingerprint != b.Fingerprint {
			t.Fatalf("entry %d differs:\nreference %+v\nresumed   %+v", i, a, b)
		}
		if (a.Witness == "") != (b.Witness == "") {
			t.Fatalf("entry %d witness presence differs: %q vs %q", i, a.Witness, b.Witness)
		}
	}
	for cl, n := range ref.RawByClass {
		if c.RawByClass[cl] != n {
			t.Fatalf("class %s: resumed %d, reference %d", cl, c.RawByClass[cl], n)
		}
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	Type string
	Job  jobs.Job
}

// readSSE parses events off an SSE stream until the terminal state
// event or EOF.
func readSSE(t *testing.T, body *bufio.Scanner, max int) []sseEvent {
	t.Helper()
	var events []sseEvent
	var typ string
	for body.Scan() {
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var j jobs.Job
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &j); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
			events = append(events, sseEvent{Type: typ, Job: j})
			if (typ == "state" && j.State.Terminal()) || len(events) >= max {
				return events
			}
		}
	}
	return events
}

// pacedCensusDecider gates the real cycles census job on a channel, so
// the SSE test provably attaches its stream while the job is still
// running — the orbit-representative census finishes a k=3 sweep in
// single-digit milliseconds, faster than an HTTP round-trip, and an
// ungated job would race the watcher to the terminal state.
type pacedCensusDecider struct {
	cyclesDecider
	attached chan struct{}
}

func (p pacedCensusDecider) RunCensusJob(ctx context.Context, e *Engine, spec jobs.Spec, report jobs.Report) (any, error) {
	<-p.attached
	return p.cyclesDecider.RunCensusJob(ctx, e, spec, report)
}

// TestHTTPJobEventsStreamMonotonic is the acceptance test for progress
// streaming: GET /v1/jobs/{id}/events on a running k=3 census job
// delivers monotonically increasing progress and ends with the terminal
// state event. The census is gated on stream attach (pacedCensusDecider)
// so every progress event is emitted while the watcher is subscribed.
func TestHTTPJobEventsStreamMonotonic(t *testing.T) {
	attached := make(chan struct{})
	registry := decide.NewRegistry()
	registry.MustRegister(pacedCensusDecider{attached: attached})
	e := New(Config{Workers: 2, Registry: registry})
	defer e.Close()
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	body, _ := json.Marshal(jobs.Spec{Type: JobCensus, K: 3})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var job jobs.Job
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()

	stream, err := http.Get(srv.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	// The stream is subscribed (response headers are written after the
	// handler attaches): release the census.
	close(attached)
	events := readSSE(t, bufio.NewScanner(stream.Body), 100000)
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}

	var last int64 = -1
	progressEvents := 0
	for _, ev := range events {
		if ev.Type != "progress" {
			continue
		}
		progressEvents++
		if ev.Job.Progress.Done < last {
			t.Fatalf("progress regressed: %d after %d", ev.Job.Progress.Done, last)
		}
		last = ev.Job.Progress.Done
	}
	if progressEvents < 2 {
		t.Errorf("only %d progress events streamed", progressEvents)
	}
	final := events[len(events)-1]
	if final.Type != "state" || final.Job.State != jobs.StateDone {
		t.Fatalf("stream ended with %s/%s, want state/done", final.Type, final.Job.State)
	}
	if final.Job.Progress.Done != 4096 || final.Job.Progress.Total != 4096 {
		t.Errorf("final progress %d/%d, want 4096/4096", final.Job.Progress.Done, final.Job.Progress.Total)
	}
}

// TestCoalescedCallHonorsContext: a caller that coalesces onto another
// caller's in-flight census computation stops waiting when its own
// context is cancelled (the computation itself keeps running and
// publishes) — the property that keeps job cancellation and manager
// shutdown from hanging behind a synchronous census request.
func TestCoalescedCallHonorsContext(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()

	block := make(chan struct{})
	computing := make(chan struct{})
	first := make(chan error, 1)
	go func() {
		_, err := cachedCall(e, nil, e.pathCensuses, e.pathCalls, 99, func() (*enumerate.PathCensus, error) {
			close(computing)
			<-block
			return &enumerate.PathCensus{K: 99, Total: 1, SolvableAll: 1}, nil
		})
		first <- err
	}()
	<-computing

	ctx, cancel := context.WithCancel(context.Background())
	second := make(chan error, 1)
	go func() {
		_, err := cachedCall(e, ctx, e.pathCensuses, e.pathCalls, 99, func() (*enumerate.PathCensus, error) {
			t.Error("coalescing caller recomputed")
			return nil, nil
		})
		second <- err
	}()
	cancel()
	select {
	case err := <-second:
		if err != context.Canceled {
			t.Errorf("cancelled coalescer returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled coalescer still blocked behind the in-flight computation")
	}

	close(block)
	if err := <-first; err != nil {
		t.Errorf("original computation failed: %v", err)
	}
}

// TestHTTPJobEventsEndOnStreamShutdown: an open SSE stream for a
// running job ends promptly when the engine's streams are shut down —
// the hook lclserver registers with http.Server.RegisterOnShutdown so a
// graceful drain is not held open by watchers.
func TestHTTPJobEventsEndOnStreamShutdown(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	body, _ := json.Marshal(jobs.Spec{Type: JobCensus, K: 3})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job jobs.Job
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()

	stream, err := http.Get(srv.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()

	done := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stream.Body)
		for sc.Scan() {
		}
		close(done)
	}()
	e.ShutdownStreams()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream still open 5s after ShutdownStreams")
	}
	// The interrupted watcher does not affect the job itself.
	if j, ok := e.GetJob(job.ID); !ok || j.State.Terminal() && j.State != jobs.StateDone {
		t.Errorf("job state after stream shutdown: %+v", j)
	}
}

func TestHTTPJobLifecycle(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()
	client := srv.Client()

	// Bad submissions.
	for _, payload := range []string{`{not json`, `{"type":"nope"}`, `{"type":"census","k":9}`} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("payload %q: status %d, want 400", payload, resp.StatusCode)
		}
	}

	// Unknown job.
	resp, _ := http.Get(srv.URL + "/v1/jobs/j999999")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job GET status %d, want 404", resp.StatusCode)
	}

	// Submit, observe in the list, fetch, wait, cancel-after-done is 409.
	body, _ := json.Marshal(jobs.Spec{Type: JobCensus, K: 1})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job jobs.Job
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if job.ID == "" {
		t.Fatal("submit returned no job ID")
	}

	resp, _ = http.Get(srv.URL + "/v1/jobs")
	var list wireJobList
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != job.ID {
		t.Errorf("job list %+v", list)
	}

	waitJob(t, e, job.ID)
	resp, _ = http.Get(srv.URL + "/v1/jobs/" + job.ID)
	var got jobs.Job
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if got.State != jobs.StateDone || len(got.Result) == 0 {
		t.Errorf("finished job %+v", got)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+job.ID, nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel finished job status %d, want 409", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/j424242", nil)
	resp, _ = client.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown job status %d, want 404", resp.StatusCode)
	}
}

func TestStatszCountsJobs(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	j, err := e.SubmitJob(jobs.Spec{Type: JobCensus, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, e, j.ID)
	st := e.Stats()
	if st.Jobs[jobs.StateDone] != 1 {
		t.Errorf("stats jobs %+v, want 1 done", st.Jobs)
	}
}

// TestRootedCensusJobMemoizesAndResumesWarm: the rooted census publishes
// every per-problem verdict into the engine cache under the rooted
// decider's domain, those verdicts survive a snapshot round-trip, and a
// restarted engine re-runs the census entirely from cache — the resume
// contract the cycle census has, now for the rooted family.
func TestRootedCensusJobMemoizesAndResumesWarm(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rooted.lclsnap")
	a := New(Config{Workers: 2, SnapshotPath: path})
	j, err := a.SubmitJob(jobs.Spec{Type: JobRootedCensus, Delta: 2, K: 1, MaxRadius: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, a, j.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("job state %s: %s", done.State, done.Error)
	}
	putsA := a.Stats().Cache.Puts
	if putsA == 0 {
		t.Fatal("rooted census published nothing to the cache")
	}
	if _, err := a.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	a.Close()

	loaded, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	b := New(Config{Workers: 2, Snapshot: loaded})
	defer b.Close()
	missesBefore := b.Stats().Cache.Misses
	j2, err := b.SubmitJob(jobs.Spec{Type: JobRootedCensus, Delta: 2, K: 1, MaxRadius: 1})
	if err != nil {
		t.Fatal(err)
	}
	done2 := waitJob(t, b, j2.ID)
	if done2.State != jobs.StateDone {
		t.Fatalf("resumed job state %s: %s", done2.State, done2.Error)
	}
	if misses := b.Stats().Cache.Misses - missesBefore; misses != 0 {
		t.Fatalf("warm rooted census recomputed %d problems", misses)
	}
	// The two runs agree on the result payload.
	r1, _ := json.Marshal(done.Result)
	r2, _ := json.Marshal(done2.Result)
	if !bytes.Equal(r1, r2) {
		t.Fatalf("results differ:\n%s\n%s", r1, r2)
	}
}
