package service

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/lcl"
	"repro/internal/problems"
	"repro/internal/store"
)

// TestSnapshotRoundTrip is the warm-restart property end to end: save an
// engine's state, build a fresh engine from the loaded snapshot, and
// verify the census is served without recomputation and classifications
// are warm (memo hit rate > 0 immediately after load).
func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "engine.lclsnap")

	// Engine A: compute a census and a couple of classifications, then
	// snapshot.
	a := New(Config{Workers: 4, SnapshotPath: path})
	censusA, err := a.Census(2, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.PathCensus(1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Classify(Request{Problem: problems.Coloring(3, 2), Mode: "paths-inputs"}); err != nil {
		t.Fatal(err)
	}
	// A synthesize result exercises the skip path (not persistable).
	if _, err := a.Classify(Request{Problem: problems.Trivial(2), Mode: "synthesize"}); err != nil {
		t.Fatal(err)
	}
	statsA := a.Stats()
	res, err := a.SaveSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoEntries == 0 || res.Censuses != 1 || res.PathCensuses != 1 || res.SkippedEntries != 1 {
		t.Fatalf("save result %+v", res)
	}
	a.Close()

	// Engine B: restart from the snapshot.
	loaded, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	b := New(Config{Workers: 4, Snapshot: loaded, SnapshotPath: path})
	defer b.Close()

	// Lifetime cache counters survived the restart.
	statsB := b.Stats()
	if statsB.Cache.Hits != statsA.Cache.Hits || statsB.Cache.Misses != statsA.Cache.Misses {
		t.Fatalf("cache counters lost: %+v vs %+v", statsB.Cache, statsA.Cache)
	}
	if statsB.Snapshot == nil || !statsB.Snapshot.Loaded || statsB.Snapshot.LoadedMemoEntries != res.MemoEntries {
		t.Fatalf("snapshot info %+v", statsB.Snapshot)
	}

	// The census is served from the restored state: identical result,
	// zero new cache misses (no classification, no memo traffic at all).
	missesBefore := b.Stats().Cache.Misses
	censusB, err := b.Census(2, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().Cache.Misses; got != missesBefore {
		t.Fatalf("restored census recomputed: %d new misses", got-missesBefore)
	}
	if !reflect.DeepEqual(censusB.ByClass, censusA.ByClass) || !reflect.DeepEqual(censusB.RawByClass, censusA.RawByClass) {
		t.Fatalf("restored census %v, want %v", censusB.ByClass, censusA.ByClass)
	}

	// Warm classification: the very first request on the restarted
	// engine hits the imported cache — for an isomorph of a census
	// problem (the census warmed the cache before the save, and label
	// spelling doesn't matter) and for the explicitly classified paths
	// request alike.
	ising := lcl.NewBuilder("warm-ising", nil, []string{"↑", "↓"}).
		Node("↑", "↑").Node("↑", "↓").Node("↓", "↓").
		Edge("↑", "↑").Edge("↓", "↓").MustBuild()
	resp, err := b.Classify(Request{Problem: ising, Mode: "cycles"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("census-covered problem missed the imported cache")
	}
	resp, err = b.Classify(Request{Problem: problems.Coloring(3, 2), Mode: "paths-inputs"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit || resp.Paths() == nil || !resp.Paths().SolvableAllInputs {
		t.Fatalf("paths classification not warm: %+v", resp)
	}
	if st := b.Stats(); st.Cache.Hits <= statsA.Cache.Hits {
		t.Fatalf("no cache hits after restart: %+v", st.Cache)
	}

	// The restored path census is served without recomputation too.
	pcB, err := b.PathCensus(1)
	if err != nil {
		t.Fatal(err)
	}
	if pcB.Total == 0 {
		t.Fatalf("restored path census empty: %+v", pcB)
	}
}

// TestSnapshotWarmStartsUncoveredCensus: a census variant the snapshot
// did not persist verbatim (dedup=false) still warm-starts from the
// restored fingerprints instead of re-classifying.
func TestSnapshotWarmStartsUncoveredCensus(t *testing.T) {
	path := filepath.Join(t.TempDir(), "engine.lclsnap")
	a := New(Config{Workers: 4, SnapshotPath: path})
	if _, err := a.Census(2, true); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	a.Close()

	loaded, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	b := New(Config{Workers: 4, Snapshot: loaded})
	defer b.Close()
	raw, err := b.Census(2, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := b.Census(2, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(raw.RawByClass, want.RawByClass) {
		t.Fatalf("warm-started raw census %v, want %v", raw.RawByClass, want.RawByClass)
	}
}

// TestSaveSnapshotRequiresPath: saving without a configured path fails
// cleanly, both at the engine and over HTTP (409).
func TestSaveSnapshotRequiresPath(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	if _, err := e.SaveSnapshot(); err == nil {
		t.Fatal("SaveSnapshot without a path succeeded")
	}
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409", resp.StatusCode)
	}
}

// TestHTTPSnapshotEndpoints: POST /v1/admin/snapshot persists a loadable
// snapshot, /statsz reports its age, and /v1/census/paths/{k} serves the
// path census.
func TestHTTPSnapshotEndpoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "http.lclsnap")
	e := New(Config{Workers: 4, SnapshotPath: path})
	srv := httptest.NewServer(NewHandler(e))
	defer func() {
		srv.Close()
		e.Close()
	}()

	var pc wirePathCensus
	if resp := getJSON(t, srv.URL+"/v1/census/paths/1", &pc); resp.StatusCode != http.StatusOK {
		t.Fatalf("path census status %d", resp.StatusCode)
	}
	if pc.K != 1 || pc.TotalProblems != pc.SolvableAll+pc.UnsolvableSome || pc.TotalProblems == 0 {
		t.Fatalf("path census %+v", pc)
	}
	if resp := getJSON(t, srv.URL+"/v1/census/paths/9", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range path census status %d", resp.StatusCode)
	}

	resp, body := postJSON(t, srv.URL+"/v1/admin/snapshot", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", resp.StatusCode, body)
	}
	if _, err := store.Load(path); err != nil {
		t.Fatalf("saved snapshot unloadable: %v", err)
	}

	var st Stats
	if resp := getJSON(t, srv.URL+"/statsz", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz status %d", resp.StatusCode)
	}
	if st.Snapshot == nil || st.Snapshot.Path != path {
		t.Fatalf("statsz snapshot info %+v", st.Snapshot)
	}
	if st.Snapshot.AgeSeconds < 0 || st.Snapshot.AgeSeconds > 60 {
		t.Fatalf("snapshot age %v", st.Snapshot.AgeSeconds)
	}
}
