package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/problems"
)

// TestObsMetricsEndpoint drives a mixed workload through the handler
// and checks /metricsz serves valid Prometheus text covering the
// engine, memo, jobs, and HTTP families with the right counts.
func TestObsMetricsEndpoint(t *testing.T) {
	srv := newTestServer(t)

	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, srv.URL+"/v1/classify", classifyBody(t, "cycles", problems.Coloring(3, 2)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("classify %d: status %d", i, resp.StatusCode)
		}
	}
	resp, _ := postJSON(t, srv.URL+"/v1/classify/batch", map[string]any{
		"requests": []map[string]any{
			classifyBody(t, "cycles", problems.Coloring(3, 2)),
			classifyBody(t, "trees", problems.Trivial(2)),
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}

	httpResp, err := http.Get(srv.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if ct := httpResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metricsz content type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(httpResp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// 3 direct + 2 batch items = 5 engine requests, 4 of them cycles.
	for _, want := range []string{
		`lcl_engine_requests_total{decider="cycles"} 4`,
		`lcl_engine_requests_total{decider="trees"} 1`,
		`lcl_engine_cache_misses_total{decider="cycles"} 1`,
		`lcl_engine_cache_hits_total{decider="cycles"} 3`,
		`lcl_http_requests_total{method="POST",route="/v1/classify",status="200"} 3`,
		`lcl_http_requests_total{method="POST",route="/v1/classify/batch",status="200"} 1`,
		"lcl_engine_batch_size_count 1",
		"lcl_memo_puts_total 2",
		"lcl_memo_shard_hits{shard=",
		`lcl_jobs{state="pending"} 0`,
		"lcl_jobs_queue_depth 0",
		"# TYPE lcl_engine_request_seconds histogram",
		// Process-level families registered by default with the engine.
		"lcl_go_goroutines ",
		"# TYPE lcl_go_gc_pause_seconds histogram",
		"lcl_build_info{",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metricsz missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}
}

// TestObsTracez checks a just-served classify request is visible in
// /debug/tracez with its pipeline spans.
func TestObsTracez(t *testing.T) {
	srv := newTestServer(t)

	// First request computes, second hits the memo.
	postJSON(t, srv.URL+"/v1/classify", classifyBody(t, "cycles", problems.Coloring(3, 2)))
	postJSON(t, srv.URL+"/v1/classify", classifyBody(t, "cycles", problems.Coloring(3, 2)))

	var out struct {
		Count  int `json:"count"`
		Traces []struct {
			ID      string `json:"id"`
			Route   string `json:"route"`
			Decider string `json:"decider"`
			Status  int    `json:"status"`
			Spans   []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"traces"`
	}
	getJSON(t, srv.URL+"/debug/tracez?decider=cycles", &out)
	if out.Count != 2 {
		t.Fatalf("tracez count = %d, want 2", out.Count)
	}
	spanNames := func(i int) map[string]bool {
		m := map[string]bool{}
		for _, s := range out.Traces[i].Spans {
			m[s.Name] = true
		}
		return m
	}
	// Newest first: Traces[0] is the memo hit, Traces[1] the compute.
	hit, computed := spanNames(0), spanNames(1)
	for _, want := range []string{"decode", "fingerprint", "memo-get", "encode"} {
		if !hit[want] || !computed[want] {
			t.Errorf("span %q missing (hit=%v computed=%v)", want, hit, computed)
		}
	}
	if !computed["compute"] || !computed["memo-put"] {
		t.Errorf("compute trace spans = %v, want compute and memo-put", computed)
	}
	if hit["compute"] {
		t.Errorf("memo-hit trace has a compute span: %v", hit)
	}
	for _, tr := range out.Traces {
		if tr.Route != "/v1/classify" || tr.Decider != "cycles" || tr.Status != 200 || tr.ID == "" {
			t.Errorf("trace metadata = %+v", tr)
		}
	}
}

// TestObsJobRequestID checks the submitting request's trace ID is
// stamped onto the job record.
func TestObsJobRequestID(t *testing.T) {
	srv := newTestServer(t)

	body, err := json.Marshal(map[string]any{"type": JobCensus, "k": 1})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "submitting-request")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var job jobs.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job.RequestID != "submitting-request" {
		t.Errorf("job.RequestID = %q, want submitting-request", job.RequestID)
	}
}

// TestObsDisabled checks DisableObs yields a bare engine: no registry,
// no /metricsz route, classify still serves.
func TestObsDisabled(t *testing.T) {
	e := New(Config{Workers: 2, DisableObs: true})
	defer e.Close()
	if e.Obs() != nil {
		t.Fatal("DisableObs engine must have nil Obs()")
	}
	if _, err := e.Classify(Request{Mode: "cycles", Problem: problems.Coloring(3, 2)}); err != nil {
		t.Fatal(err)
	}
	h := NewHandler(e)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metricsz", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("/metricsz on a bare engine: status %d, want 404", rec.Code)
	}
}

// TestObsSharedSetAcrossHandlers: constructing a second handler over
// one engine (snapshot tests do this) must not panic on double
// registration.
func TestObsSharedSetAcrossHandlers(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	_ = NewHandler(e)
	_ = NewHandler(e)
}

// TestObsEngineSharedRegistry: two engines must not share a default
// registry implicitly (each New without Config.Obs gets a private set).
func TestObsEngineSharedRegistry(t *testing.T) {
	a := New(Config{Workers: 1})
	defer a.Close()
	b := New(Config{Workers: 1})
	defer b.Close()
	if a.Obs() == nil || b.Obs() == nil || a.Obs() == b.Obs() {
		t.Fatalf("engines must get private obs sets: %p vs %p", a.Obs(), b.Obs())
	}
	// Sharing one set explicitly is the supported multi-engine shape.
	set := obs.NewSet()
	c := New(Config{Workers: 1, Obs: set})
	defer c.Close()
	if c.Obs() != set {
		t.Fatal("explicit Config.Obs must be used verbatim")
	}
	var buf bytes.Buffer
	if err := set.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lcl_engine_requests_total") {
		t.Errorf("shared registry missing engine families:\n%s", buf.String())
	}
}
