// Tests for the vectorized batch pipeline (batch.go): edge cases
// (empty, all-duplicates, mixed-decider, partial failure, limits),
// bit-identity against the per-item path, sealed batch serving, the
// zero-alloc steady state, and singleflight sharing across concurrent
// overlapping batches.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/decide"
	"repro/internal/enumerate"
	"repro/internal/problems"
)

// batchRequests is the mixed-decider request set the batch tests share:
// two label-isomorphic cycle problems (intra-batch dedup across
// distinct pointers), a literal repeat (identity prefilter), and one
// request per remaining decider.
func batchRequests() []Request {
	coloring := problems.Coloring(3, 2)
	return []Request{
		{Mode: ModeCycles, Problem: coloring},
		{Mode: ModeCycles, Problem: relabeled3Coloring()},
		{Mode: ModeCycles, Problem: coloring},
		{Mode: ModeTrees, Problem: problems.Trivial(2)},
		{Mode: ModePathsInputs, Problem: problems.Coloring(3, 2)},
		{Mode: ModeSynthesize, Problem: problems.Trivial(2)},
		{Mode: ModeRooted, Rooted: rootedTwoColoring()},
		{Mode: ModeGrid, Dims: 1, Problem: enumerate.FromMasks(1, 1, 1)},
	}
}

func TestClassifyBatchEmpty(t *testing.T) {
	e := newTestEngine(t)
	if items := e.ClassifyBatch(nil); len(items) != 0 {
		t.Fatalf("empty batch returned %d items", len(items))
	}
	if items := e.ClassifyBatch([]Request{}); len(items) != 0 {
		t.Fatalf("empty batch returned %d items", len(items))
	}
	if st := e.Stats(); st.Requests != 0 || st.Errors != 0 {
		t.Fatalf("empty batch touched counters: %+v", st)
	}
}

func TestClassifyBatchAllDuplicates(t *testing.T) {
	e := newTestEngine(t)
	p := problems.Coloring(3, 2)
	reqs := make([]Request, 16)
	for i := range reqs {
		reqs[i] = Request{Mode: ModeCycles, Problem: p}
	}
	b := e.NewBatch()
	defer b.Release()
	items := b.Classify(context.Background(), reqs)
	if len(items) != len(reqs) {
		t.Fatalf("got %d items, want %d", len(items), len(reqs))
	}
	first := items[0].Response
	if items[0].Err != nil || first == nil {
		t.Fatalf("item 0: %v", items[0].Err)
	}
	if first.CacheHit || first.Coalesced {
		t.Fatalf("representative should have computed: %+v", first)
	}
	for i, item := range items[1:] {
		if item.Err != nil {
			t.Fatalf("item %d: %v", i+1, item.Err)
		}
		r := item.Response
		if !r.Coalesced {
			t.Errorf("duplicate item %d not marked coalesced: %+v", i+1, r)
		}
		if r.Fingerprint != first.Fingerprint || r.Class != first.Class {
			t.Errorf("duplicate item %d diverged: %+v vs %+v", i+1, r, first)
		}
		if r.Payload != first.Payload {
			t.Errorf("duplicate item %d does not share the payload", i+1)
		}
	}
	st := b.Stats()
	if st.Unique != 1 || st.Deduped != 15 || st.Computed != 1 || st.Coalesced != 15 {
		t.Fatalf("batch stats: %+v", st)
	}
	// Exactly one computation reached the cache: one miss, one put.
	if cs := e.Stats().Cache; cs.Misses != 1 || cs.Puts != 1 {
		t.Fatalf("cache stats after all-duplicates batch: %+v", cs)
	}
	if got := e.Stats().Requests; got != 16 {
		t.Fatalf("requests = %d, want 16 (every item counts)", got)
	}
}

func TestClassifyBatchMixedDeciders(t *testing.T) {
	e := newTestEngine(t)
	reqs := batchRequests()
	items := e.ClassifyBatch(reqs)
	if len(items) != len(reqs) {
		t.Fatalf("got %d items, want %d", len(items), len(reqs))
	}
	for i, item := range items {
		if item.Err != nil {
			t.Fatalf("item %d (%s): %v", i, reqs[i].Mode, item.Err)
		}
		if item.Response.Mode != reqs[i].Mode {
			t.Errorf("item %d: mode %q, want %q (positional order broken?)",
				i, item.Response.Mode, reqs[i].Mode)
		}
	}
	// The three cycle items share one orbit: the isomorph and the
	// literal repeat both resolve to item 0's computation.
	if items[0].Response.Fingerprint != items[1].Response.Fingerprint ||
		items[0].Response.Fingerprint != items[2].Response.Fingerprint {
		t.Error("isomorphic cycle items have different fingerprints")
	}
	if !items[1].Response.Coalesced || !items[2].Response.Coalesced {
		t.Error("intra-batch duplicates not coalesced")
	}
	if items[0].Response.Class != decide.LogStar {
		t.Errorf("3-coloring class: %v", items[0].Response.Class)
	}
}

// TestClassifyBatchMatchesPerItem is the bit-identity acceptance
// criterion: per position, the batch pipeline returns the same verdict
// (mode, fingerprint, class, detail JSON, payload) as the per-item
// path, on cold engines; and on a warm engine the full responses —
// serving flags included — are identical.
func TestClassifyBatchMatchesPerItem(t *testing.T) {
	reqs := batchRequests()

	perItem := New(Config{Workers: 4, DisableObs: true})
	defer perItem.Close()
	batch := New(Config{Workers: 4, DisableObs: true})
	defer batch.Close()

	want := make([]*Response, len(reqs))
	for i, req := range reqs {
		resp, err := perItem.Classify(req)
		if err != nil {
			t.Fatalf("per-item %d: %v", i, err)
		}
		want[i] = resp
	}
	items := batch.ClassifyBatch(reqs)
	for i, item := range items {
		if item.Err != nil {
			t.Fatalf("batch item %d: %v", i, item.Err)
		}
		got := item.Response
		if got.Mode != want[i].Mode || got.Fingerprint != want[i].Fingerprint || got.Class != want[i].Class {
			t.Errorf("item %d: got (%s, %016x, %v), want (%s, %016x, %v)",
				i, got.Mode, got.Fingerprint, got.Class,
				want[i].Mode, want[i].Fingerprint, want[i].Class)
		}
		gj, _ := json.Marshal(got.Detail)
		wj, _ := json.Marshal(want[i].Detail)
		if string(gj) != string(wj) {
			t.Errorf("item %d detail: %s != %s", i, gj, wj)
		}
		if !reflect.DeepEqual(got.Payload, want[i].Payload) {
			t.Errorf("item %d payloads differ", i)
		}
	}

	// Warm identity: both paths now hit the memo cache, so responses
	// must match field for field, flags included.
	for i, req := range reqs {
		resp, err := perItem.Classify(req)
		if err != nil {
			t.Fatalf("warm per-item %d: %v", i, err)
		}
		want[i] = resp
	}
	// The batch engine's cache was warmed by its own first pass;
	// compare the second pass field for field (details via JSON —
	// the two engines hold distinct but equal detail values).
	items = batch.ClassifyBatch(reqs)
	for i, item := range items {
		got := item.Response
		if got == nil {
			t.Fatalf("warm batch item %d: %v", i, item.Err)
		}
		w := want[i]
		if got.Mode != w.Mode || got.Fingerprint != w.Fingerprint || got.Class != w.Class ||
			got.CacheHit != w.CacheHit || got.Coalesced != w.Coalesced || got.Sealed != w.Sealed {
			t.Errorf("warm item %d: %+v != %+v", i, got, w)
		}
		gj, _ := json.Marshal(got.Detail)
		wj, _ := json.Marshal(w.Detail)
		if string(gj) != string(wj) {
			t.Errorf("warm item %d detail: %s != %s", i, gj, wj)
		}
	}
}

// TestClassifyBatchPartialFailure: invalid items keep their slot and
// error; valid items around them are served.
func TestClassifyBatchPartialFailure(t *testing.T) {
	e := newTestEngine(t)
	reqs := []Request{
		{Mode: ModeCycles, Problem: problems.Coloring(3, 2)},
		{Mode: "no-such-mode", Problem: problems.Coloring(3, 2)},
		{Mode: ModeTrees}, // missing problem: Normalize rejects
		{Mode: ModeCycles, Problem: problems.Coloring(3, 2)},
	}
	items := e.ClassifyBatch(reqs)
	if items[0].Err != nil || items[0].Response == nil {
		t.Fatalf("item 0: %v", items[0].Err)
	}
	if items[1].Err == nil {
		t.Fatal("unknown mode did not error")
	}
	if items[2].Err == nil {
		t.Fatal("missing problem did not error")
	}
	if items[3].Err != nil || items[3].Response == nil {
		t.Fatalf("item 3: %v", items[3].Err)
	}
	if !items[3].Response.Coalesced {
		t.Errorf("item 3 duplicates item 0 and should coalesce: %+v", items[3].Response)
	}
	st := e.Stats()
	// Items 1 and 2 are rejected before serving: errors only, never
	// requests — same accounting as the per-item path.
	if st.Requests != 2 || st.Errors != 2 || st.UnknownModeRejects != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestClassifyBatchSealed: a batch over sealed-space problems is served
// entirely from the sealed tier, with verdicts identical to Get's.
func TestClassifyBatchSealed(t *testing.T) {
	tbl := buildTestSealed(t)
	e := New(Config{Sealed: tbl, DisableObs: true})
	defer e.Close()

	pairSpace := uint(1) << uint(enumerate.PairCount(2))
	var reqs []Request
	for n2 := uint(0); n2 < pairSpace; n2++ {
		for edge := uint(0); edge < pairSpace; edge++ {
			reqs = append(reqs, Request{Mode: ModeCycles, Problem: enumerate.FromMasks(2, n2, edge)})
		}
	}
	b := e.NewBatch()
	defer b.Release()
	items := b.Classify(context.Background(), reqs)
	for i, item := range items {
		if item.Err != nil {
			t.Fatalf("item %d: %v", i, item.Err)
		}
		r := item.Response
		if !r.Sealed || !r.CacheHit {
			t.Fatalf("item %d not served sealed: %+v", i, r)
		}
		single, err := e.Classify(reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		if r.Class != single.Class || r.Fingerprint != single.Fingerprint {
			t.Errorf("item %d diverges from single-request serving", i)
		}
		if !reflect.DeepEqual(r.Payload, single.Payload) {
			t.Errorf("item %d payload diverges from single-request serving", i)
		}
	}
	if st := b.Stats(); st.SealedHits != st.Items || st.MemoHits != 0 || st.Computed != 0 {
		t.Fatalf("sealed batch stats: %+v (want every item sealed)", st)
	}
}

// TestClassifyBatchSealedZeroAlloc: steady-state batch serving of
// sealed hits allocates nothing per item (the acceptance criterion the
// CI bench gate pins; this is the in-tree witness).
func TestClassifyBatchSealedZeroAlloc(t *testing.T) {
	tbl := buildTestSealed(t)
	e := New(Config{Sealed: tbl, DisableObs: true})
	defer e.Close()

	var reqs []Request
	for n2 := uint(0); n2 < 8; n2++ {
		reqs = append(reqs, Request{Mode: ModeCycles, Problem: enumerate.FromMasks(2, n2, 3)})
	}
	b := e.NewBatch()
	defer b.Release()
	ctx := context.Background()
	// Warm: fills the pooled arena and the engine's sealed verdict
	// memos.
	b.Classify(ctx, reqs)
	allocs := testing.AllocsPerRun(100, func() {
		items := b.Classify(ctx, reqs)
		if items[0].Err != nil {
			t.Fatal(items[0].Err)
		}
	})
	if allocs > 0 {
		t.Fatalf("sealed-hit batch allocates %.2f allocs per batch, want 0", allocs)
	}
}

// slowDecider is a test decider with observable compute counts and a
// tunable compute delay, for the singleflight race test.
type slowDecider struct {
	computes atomic.Int64
	delay    time.Duration
}

type slowPayload struct {
	Key int `json:"key"`
}

func (d *slowDecider) Name() string                   { return "slow" }
func (d *slowDecider) Normalize(req *Request) error   { return nil }
func (d *slowDecider) MemoDomain(req *Request) string { return "test/slow" }
func (d *slowDecider) Fingerprint(req *Request) (uint64, bool, error) {
	return uint64(req.MaxLevels), true, nil
}
func (d *slowDecider) Compute(ctx context.Context, req *Request) (any, error) {
	d.computes.Add(1)
	time.Sleep(d.delay)
	return &slowPayload{Key: req.MaxLevels}, nil
}
func (d *slowDecider) WrapPayload(payload any) (*decide.Verdict, error) {
	p, ok := payload.(*slowPayload)
	if !ok {
		return nil, fmt.Errorf("unexpected payload %T", payload)
	}
	return &decide.Verdict{Class: decide.Constant, Detail: p}, nil
}

// TestBatchConcurrentSingleflight: concurrent overlapping batches share
// computations through the engine singleflight — each distinct key
// computes exactly once across all batches (run under -race in CI).
func TestBatchConcurrentSingleflight(t *testing.T) {
	d := &slowDecider{delay: 20 * time.Millisecond}
	reg := decide.NewRegistry()
	reg.MustRegister(d)
	e := New(Config{Workers: 8, Registry: reg, DisableObs: true})
	defer e.Close()

	// Three batches over overlapping key ranges, with intra-batch
	// duplicates. Union of keys: 1..12.
	ranges := [][2]int{{1, 8}, {5, 12}, {3, 10}}
	var wg sync.WaitGroup
	results := make([][]BatchItem, len(ranges))
	for bi, rng := range ranges {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var reqs []Request
			for k := rng[0]; k <= rng[1]; k++ {
				reqs = append(reqs, Request{Mode: "slow", MaxLevels: k})
				reqs = append(reqs, Request{Mode: "slow", MaxLevels: k}) // duplicate
			}
			results[bi] = e.ClassifyBatch(reqs)
		}()
	}
	wg.Wait()
	for bi, items := range results {
		for i, item := range items {
			if item.Err != nil {
				t.Fatalf("batch %d item %d: %v", bi, i, item.Err)
			}
			wantKey := ranges[bi][0] + i/2
			if got := item.Response.Payload.(*slowPayload).Key; got != wantKey {
				t.Fatalf("batch %d item %d: key %d, want %d", bi, i, got, wantKey)
			}
		}
	}
	if got := d.computes.Load(); got != 12 {
		t.Fatalf("computed %d times, want 12 (one per distinct key across all batches)", got)
	}
}

// TestBatchHTTPLimitAndValidation covers the batch-size limit (413 +
// structured error), a batch exactly at the limit, the empty batch, and
// explicit empty items.
func TestBatchHTTPLimitAndValidation(t *testing.T) {
	e := New(Config{Workers: 2, MaxBatch: 4})
	srv := newServerFor(t, e)

	item := classifyBody(t, "cycles", problems.Coloring(3, 2))

	// Oversized: 5 > 4 → 413 with the structured error body.
	over := map[string]any{"requests": []any{item, item, item, item, item}}
	resp, body := postJSON(t, srv.URL+"/v1/classify/batch", over)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d, body %s", resp.StatusCode, body)
	}
	var lim wireBatchLimitError
	if err := json.Unmarshal(body, &lim); err != nil {
		t.Fatal(err)
	}
	if lim.MaxBatch != 4 || lim.Items != 5 || lim.Error == "" {
		t.Fatalf("413 body: %+v", lim)
	}

	// Exactly at the limit: served.
	atLimit := map[string]any{"requests": []any{item, item, item, item}}
	resp, body = postJSON(t, srv.URL+"/v1/classify/batch", atLimit)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("at-limit batch: status %d, body %s", resp.StatusCode, body)
	}
	var out wireBatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("at-limit body: %v\n%s", err, body)
	}
	if len(out.Results) != 4 {
		t.Fatalf("at-limit results: %d", len(out.Results))
	}
	// All four raw payloads are identical bytes: the handler shares one
	// decoded problem and the engine dedups them to one computation.
	if out.Deduped != 3 {
		t.Fatalf("deduped = %d, want 3", out.Deduped)
	}

	// Empty batch: 400.
	resp, body = postJSON(t, srv.URL+"/v1/classify/batch", map[string]any{"requests": []any{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, body %s", resp.StatusCode, body)
	}

	// An explicitly empty item errors in place; its neighbors serve.
	mixed := map[string]any{"requests": []any{item, map[string]any{"mode": "cycles"}}}
	resp, body = postJSON(t, srv.URL+"/v1/classify/batch", mixed)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch: status %d", resp.StatusCode)
	}
	out = wireBatchResponse{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Results[0].Error != "" || out.Results[0].Class == "" {
		t.Fatalf("valid item failed: %+v", out.Results[0])
	}
	if out.Results[1].Error == "" {
		t.Fatalf("empty item did not error: %+v", out.Results[1])
	}
}

// newServerFor wraps an engine in a test server with cleanup.
func newServerFor(t *testing.T, e *Engine) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return srv
}

// TestBatchHTTPBitIdenticalToSingle posts every request individually
// and as one batch against engines in the same state, and requires the
// wire fields to match per position.
func TestBatchHTTPBitIdenticalToSingle(t *testing.T) {
	singleSrv := newTestServer(t)
	batchSrv := newTestServer(t)

	bodies := []map[string]any{
		classifyBody(t, "cycles", problems.Coloring(3, 2)),
		classifyBody(t, "cycles", relabeled3Coloring()),
		classifyBody(t, "trees", problems.Trivial(2)),
		classifyBody(t, "paths-inputs", problems.Coloring(3, 2)),
		{"mode": "rooted", "rooted": rootedTwoColoring()},
		classifyBody(t, "grid", enumerate.FromMasks(1, 1, 1)),
	}
	// Warm both engines so serving flags agree (everything a memo hit),
	// then compare the second pass.
	for pass := 0; pass < 2; pass++ {
		singles := make([]*wireResponse, len(bodies))
		for i, body := range bodies {
			resp, raw := postJSON(t, singleSrv.URL+"/v1/classify", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("single %d: status %d, body %s", i, resp.StatusCode, raw)
			}
			singles[i] = &wireResponse{}
			if err := json.Unmarshal(raw, singles[i]); err != nil {
				t.Fatal(err)
			}
		}
		reqList := make([]any, len(bodies))
		for i := range bodies {
			reqList[i] = bodies[i]
		}
		resp, raw := postJSON(t, batchSrv.URL+"/v1/classify/batch", map[string]any{"requests": reqList})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch: status %d, body %s", resp.StatusCode, raw)
		}
		var out wireBatchResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("batch body: %v\n%s", err, raw)
		}
		if len(out.Results) != len(bodies) {
			t.Fatalf("batch results: %d, want %d", len(out.Results), len(bodies))
		}
		if pass == 0 {
			continue
		}
		for i, got := range out.Results {
			want := singles[i]
			if got.Problem != want.Problem || got.Mode != want.Mode ||
				got.Fingerprint != want.Fingerprint || got.Class != want.Class ||
				got.CacheHit != want.CacheHit || got.Coalesced != want.Coalesced ||
				got.Sealed != want.Sealed || got.Error != want.Error {
				t.Errorf("item %d wire fields diverge:\n batch: %+v\n single: %+v", i, got, want)
			}
			var gd, wd any
			if err := json.Unmarshal(got.Detail, &gd); err != nil {
				t.Fatalf("item %d batch detail: %v", i, err)
			}
			if err := json.Unmarshal(want.Detail, &wd); err != nil {
				t.Fatalf("item %d single detail: %v", i, err)
			}
			if !reflect.DeepEqual(gd, wd) {
				t.Errorf("item %d details diverge: %s vs %s", i, got.Detail, want.Detail)
			}
		}
	}
}

// TestBatchStatsSurface: memo batch counters flow through to /statsz.
func TestBatchStatsSurface(t *testing.T) {
	e := newTestEngine(t)
	reqs := batchRequests()
	e.ClassifyBatch(reqs) // cold: batch-get all misses
	e.ClassifyBatch(reqs) // warm: batch-get hits
	st := e.Stats()
	if st.BatchLimit != DefaultMaxBatch {
		t.Fatalf("batch limit: %d", st.BatchLimit)
	}
	if st.Cache.BatchCalls < 2 || st.Cache.BatchKeys == 0 {
		t.Fatalf("memo batch counters not surfaced: %+v", st.Cache)
	}
	if st.Cache.BatchHits == 0 {
		t.Fatalf("warm batch recorded no batch hits: %+v", st.Cache)
	}
}
