// HTTP transport for the jobs API: typed submissions, listing,
// cancellation, and Server-Sent-Events progress streaming.
//
// SSE wire format (one event per job notification):
//
//	event: state|progress|checkpoint
//	data: {"id":"j000003","state":"running","progress":{...},...}
//
// The data payload is the full job record (the same JSON GET
// /v1/jobs/{id} serves), so a client can treat every event as a fresh
// snapshot; the stream ends after the event that carries a terminal
// state. Slow consumers lose oldest events first, never the newest.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/jobs"
)

func (e *Engine) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	job, err := e.SubmitJobCtx(r.Context(), spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

type wireJobList struct {
	Jobs []jobs.Job `json:"jobs"`
}

func (e *Engine) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, wireJobList{Jobs: e.ListJobs()})
}

func (e *Engine) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, ok := e.GetJob(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (e *Engine) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := e.CancelJob(id); err != nil {
		// Unknown id is 404; cancelling a finished job is 409.
		if _, ok := e.GetJob(id); !ok {
			httpError(w, http.StatusNotFound, "%v", err)
		} else {
			httpError(w, http.StatusConflict, "%v", err)
		}
		return
	}
	job, _ := e.GetJob(id)
	writeJSON(w, http.StatusOK, job)
}

func (e *Engine) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, cancel, err := e.WatchJob(id)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer cancel()
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-e.streamsDone:
			// Server shutting down: end the stream so the HTTP drain can
			// finish; the client sees EOF and can resubscribe after the
			// restart (the job resumes via the ledger).
			return
		case ev := <-ch:
			data, err := json.Marshal(ev.Job)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			fl.Flush()
			// The subscription's initial snapshot plus every transition
			// flows through here; a terminal state ends the stream.
			if ev.Type == jobs.EventState && ev.Job.State.Terminal() {
				return
			}
		}
	}
}
