// Job orchestration wiring: the engine's long-running workloads —
// censuses over whole problem spaces plus landscape sweeps — exposed as
// resumable background jobs (internal/jobs).
//
// The census job table is built generically from the decider registry:
// any registered decider implementing CensusRunner contributes one job
// type. The resume contract composes three existing mechanisms rather
// than inventing a new one: census runners publish every individual
// decision into the engine's memo cache as they go, the jobs manager
// periodically checkpoints by saving the engine snapshot
// (internal/store), and the job ledger records which jobs were in
// flight. A process killed mid-census therefore restarts with (a) the
// job re-enqueued from the ledger and (b) the memo cache warm from the
// last checkpoint — the re-run skips every decision already persisted
// and recomputes only the tail.
package service

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/jobs"
	"repro/internal/landscape"
	"repro/internal/obs"
	"repro/internal/rooted"
)

// The job types the engine serves. The census types are contributed by
// the deciders (CensusRunner); the names are stable because job ledgers
// persist them across restarts.
const (
	// JobCensus is the classified cycle-LCL census (Spec.K, Spec.Dedup),
	// contributed by the cycles decider.
	JobCensus = "census"
	// JobPathCensus is the path-LCL solvability census (Spec.K),
	// contributed by the paths-inputs decider.
	JobPathCensus = "path-census"
	// JobRootedCensus is the rooted-tree census (Spec.Delta, Spec.K,
	// Spec.MaxRadius), contributed by the rooted decider.
	JobRootedCensus = "rooted-census"
	// JobLandscape regenerates the Figure-1 landscape panels (Spec.Sizes,
	// Spec.Seed).
	JobLandscape = "landscape"
)

// CensusRunner is the optional decider capability behind census jobs: a
// decider that can exhaustively enumerate and decide its problem space
// contributes one job type. Implementations run against the engine so
// their per-problem decisions flow through the shared memo cache —
// that is what makes their jobs resumable through snapshots.
type CensusRunner interface {
	// CensusJobType names the job type (stable across releases; job
	// ledgers persist it).
	CensusJobType() string
	// ValidateCensusSpec rejects specs the runner would reject, before
	// they enter the queue — a submission error beats a failed job.
	ValidateCensusSpec(spec jobs.Spec) error
	// RunCensusJob executes the census against the engine's caches.
	RunCensusJob(ctx context.Context, e *Engine, spec jobs.Spec, report jobs.Report) (any, error)
}

// censusRunners collects the registry's census-capable deciders.
func (e *Engine) censusRunners() map[string]CensusRunner {
	out := map[string]CensusRunner{}
	for _, name := range e.registry.Names() {
		d, _ := e.registry.Get(name)
		if cr, ok := d.(CensusRunner); ok {
			out[cr.CensusJobType()] = cr
		}
	}
	return out
}

// runners builds the engine's job-type table: one generic census runner
// per census-capable decider, plus the landscape sweep.
func (e *Engine) runners() map[string]jobs.Runner {
	table := map[string]jobs.Runner{
		JobLandscape: e.runLandscapeJob,
	}
	for jobType, cr := range e.censusRunners() {
		cr := cr
		table[jobType] = func(ctx context.Context, spec jobs.Spec, report jobs.Report) (any, error) {
			return cr.RunCensusJob(ctx, e, spec, report)
		}
	}
	return table
}

// ValidateJobSpec rejects specs their runner would reject, before they
// enter the queue.
func (e *Engine) ValidateJobSpec(spec jobs.Spec) error {
	if cr, ok := e.censusRunners()[spec.Type]; ok {
		return cr.ValidateCensusSpec(spec)
	}
	if spec.Type == JobLandscape {
		for _, n := range spec.Sizes {
			if n < 4 {
				return fmt.Errorf("service: landscape job size %d too small (want >= 4)", n)
			}
		}
		return nil
	}
	return fmt.Errorf("service: unknown job type %q", spec.Type)
}

// SubmitJob validates and enqueues a job.
func (e *Engine) SubmitJob(spec jobs.Spec) (jobs.Job, error) {
	return e.SubmitJobCtx(context.Background(), spec)
}

// SubmitJobCtx is SubmitJob with a request context: a trace carried in
// ctx stamps its ID onto the job record (Job.RequestID), linking the
// submitting HTTP request to the job's whole lifecycle in logs and the
// jobs API.
func (e *Engine) SubmitJobCtx(ctx context.Context, spec jobs.Spec) (jobs.Job, error) {
	if err := e.ValidateJobSpec(spec); err != nil {
		return jobs.Job{}, err
	}
	return e.jobMgr.SubmitWith(spec, obs.TraceFrom(ctx).ID())
}

// GetJob returns a snapshot of one job.
func (e *Engine) GetJob(id string) (jobs.Job, bool) { return e.jobMgr.Get(id) }

// ListJobs returns snapshots of every known job, newest first.
func (e *Engine) ListJobs() []jobs.Job { return e.jobMgr.List() }

// CancelJob cancels a pending or running job.
func (e *Engine) CancelJob(id string) error { return e.jobMgr.Cancel(id) }

// WatchJob subscribes to a job's event stream (see jobs.Manager.
// Subscribe); call the returned cancel function when done.
func (e *Engine) WatchJob(id string) (<-chan jobs.Event, func(), error) {
	return e.jobMgr.Subscribe(id)
}

// ---------------------------------------------------------------------
// cycles census

// censusJobResult is the JSON shape of a finished census job — the same
// per-class summary the census endpoint serves.
type censusJobResult struct {
	K                  int            `json:"k"`
	Dedup              bool           `json:"dedup"`
	TotalProblems      int            `json:"total_problems"`
	IsomorphismClasses int            `json:"isomorphism_classes,omitempty"`
	Classes            map[string]int `json:"classes"`
	GapHolds           bool           `json:"gap_holds"`
}

func (cyclesDecider) CensusJobType() string { return JobCensus }

func (cyclesDecider) ValidateCensusSpec(spec jobs.Spec) error {
	if spec.K < 1 || spec.K > 3 {
		return fmt.Errorf("service: %s job k = %d out of range [1, 3]", spec.Type, spec.K)
	}
	return nil
}

// RunCensusJob computes the cycle census for the spec, reporting
// progress per classified problem. Partial work lands in the engine's
// memo cache (checkpointed by the jobs manager), and a restored snapshot
// census warm-starts the run, so resumed jobs skip decided problems. The
// run shares the synchronous endpoint's cache and singleflight
// (censusWith), so a concurrent GET /v1/census/{k} coalesces instead of
// duplicating the sweep.
func (cyclesDecider) RunCensusJob(ctx context.Context, e *Engine, spec jobs.Spec, report jobs.Report) (any, error) {
	report("enumerate", 0, 0)
	c, err := e.censusWith(ctx, spec.K, spec.Dedup, func(done, total int) {
		report("classify", int64(done), int64(total))
	})
	if err != nil {
		return nil, err
	}
	res := censusJobResult{
		K:        c.K,
		Dedup:    c.Dedup,
		Classes:  map[string]int{},
		GapHolds: c.GapHolds(),
	}
	for cl, n := range c.RawByClass {
		res.TotalProblems += n
		res.Classes[cl.String()] = n
	}
	if c.Dedup {
		res.IsomorphismClasses = len(c.Entries)
	}
	return res, nil
}

// ---------------------------------------------------------------------
// path census

// pathCensusJobResult is the JSON shape of a finished path-census job.
type pathCensusJobResult struct {
	K              int         `json:"k"`
	TotalProblems  int         `json:"total_problems"`
	SolvableAll    int         `json:"solvable_all"`
	UnsolvableSome int         `json:"unsolvable_some"`
	ShortestBad    map[int]int `json:"shortest_bad,omitempty"`
}

func (pathsDecider) CensusJobType() string { return JobPathCensus }

func (pathsDecider) ValidateCensusSpec(spec jobs.Spec) error {
	if spec.K < 1 || spec.K > 3 {
		return fmt.Errorf("service: %s job k = %d out of range [1, 3]", spec.Type, spec.K)
	}
	return nil
}

// RunCensusJob computes the path census, memoizing per-problem
// decisions in the engine's cache so checkpoints make it resumable;
// like the cycle census it shares the synchronous endpoint's
// singleflight.
func (pathsDecider) RunCensusJob(ctx context.Context, e *Engine, spec jobs.Spec, report jobs.Report) (any, error) {
	c, err := e.pathCensusWith(ctx, spec.K, func(done, total int) {
		report("decide", int64(done), int64(total))
	})
	if err != nil {
		return nil, err
	}
	return pathCensusJobResult{
		K:              c.K,
		TotalProblems:  c.Total,
		SolvableAll:    c.SolvableAll,
		UnsolvableSome: c.UnsolvableSome,
		ShortestBad:    c.ShortestBad,
	}, nil
}

// ---------------------------------------------------------------------
// rooted census

// rootedCensusJobResult is the JSON shape of a finished rooted-census
// job.
type rootedCensusJobResult struct {
	Delta         int            `json:"delta"`
	K             int            `json:"k"`
	MaxRadius     int            `json:"max_radius"`
	TotalProblems int            `json:"total_problems"`
	Classes       map[string]int `json:"classes"`
	ByRadius      map[int]int    `json:"by_radius,omitempty"`
}

func (rootedDecider) CensusJobType() string { return JobRootedCensus }

func (rootedDecider) ValidateCensusSpec(spec jobs.Spec) error {
	if spec.Delta < 1 || spec.Delta > 3 {
		return fmt.Errorf("service: rooted-census job delta = %d out of range [1, 3]", spec.Delta)
	}
	if spec.K < 1 || spec.K > 2 {
		return fmt.Errorf("service: rooted-census job k = %d out of range [1, 2]", spec.K)
	}
	return nil
}

// RunCensusJob enumerates and classifies the rooted-tree LCL space,
// memoizing every per-problem verdict in the engine's cache under the
// rooted decider's domain. Checkpoints persist the verdicts through the
// snapshot store (rooted records), so an interrupted census resumes
// warm, and API traffic on the same problems hits too.
func (rootedDecider) RunCensusJob(ctx context.Context, e *Engine, spec jobs.Spec, report jobs.Report) (any, error) {
	maxRadius := spec.MaxRadius
	if maxRadius <= 0 {
		maxRadius = DefaultRootedRadius
	}
	c, err := rooted.RunCensus(spec.Delta, spec.K, rooted.CensusOpts{
		MaxRadius: maxRadius,
		Ctx:       ctx,
		Progress: func(done, total int) {
			report("classify", int64(done), int64(total))
		},
		Classify: RootedMemoClassifier(e.cache, maxRadius),
	})
	if err != nil {
		return nil, err
	}
	res := rootedCensusJobResult{
		Delta:         c.Delta,
		K:             c.K,
		MaxRadius:     c.MaxRadius,
		TotalProblems: len(c.Entries),
		Classes:       map[string]int{},
		ByRadius:      c.ByRadius,
	}
	for cl, n := range c.ByClass {
		res.Classes[cl.String()] = n
	}
	return res, nil
}

// ---------------------------------------------------------------------
// landscape

// landscapeJobResult is the JSON shape of a finished landscape job: the
// measured panels, directly marshalled (Panel and Series are plain
// exported structs).
type landscapeJobResult struct {
	Sizes  []int              `json:"sizes"`
	Seed   int64              `json:"seed"`
	Panels []*landscape.Panel `json:"panels"`
}

// defaultLandscapeSizes is the sweep used when a landscape spec leaves
// Sizes empty.
var defaultLandscapeSizes = []int{64, 256, 1024}

// runLandscapeJob regenerates the Figure-1 panels, one phase per panel.
func (e *Engine) runLandscapeJob(ctx context.Context, spec jobs.Spec, report jobs.Report) (any, error) {
	sizes := spec.Sizes
	if len(sizes) == 0 {
		sizes = defaultLandscapeSizes
	}
	sizes = append([]int(nil), sizes...)
	sort.Ints(sizes)
	maxN := sizes[len(sizes)-1]
	var sides []int
	for s := 4; s*s <= maxN; s *= 2 {
		sides = append(sides, s)
	}
	phases := []struct {
		name string
		run  func() (*landscape.Panel, error)
	}{
		{"trees", func() (*landscape.Panel, error) { return landscape.TreesLocal(sizes, spec.Seed) }},
		{"grids", func() (*landscape.Panel, error) { return landscape.GridsLocal(sides, spec.Seed) }},
		{"general", func() (*landscape.Panel, error) { return landscape.GeneralLocal(sizes) }},
		{"volume", func() (*landscape.Panel, error) { return landscape.VolumeModel(sizes, spec.Seed) }},
	}
	res := landscapeJobResult{Sizes: sizes, Seed: spec.Seed}
	for i, ph := range phases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		report(ph.name, int64(i), int64(len(phases)))
		p, err := ph.run()
		if err != nil {
			return nil, fmt.Errorf("landscape %s: %w", ph.name, err)
		}
		res.Panels = append(res.Panels, p)
	}
	report("done", int64(len(phases)), int64(len(phases)))
	return res, nil
}
