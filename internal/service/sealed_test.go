package service

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/enumerate"
	"repro/internal/memo"
	"repro/internal/rooted"
	"repro/internal/store"
)

// testSealConfig is a build small enough for every unit test: the k=2
// cycle space, k=1 path space, the smallest rooted space, and the k=1
// grid space.
func testSealConfig() SealConfig {
	return SealConfig{
		CycleKs: []int{2},
		PathKs:  []int{1},
		Rooted:  [][2]int{{1, 1}},
		GridKs:  []int{1},
	}
}

// buildTestSealed builds, saves, and reloads a sealed table, so tests
// exercise the full artifact path rather than an in-memory shortcut.
func buildTestSealed(t *testing.T) *store.SealedTable {
	t.Helper()
	sealed, err := BuildSealed(testSealConfig())
	if err != nil {
		t.Fatalf("BuildSealed: %v", err)
	}
	path := filepath.Join(t.TempDir(), "landscape.lclseal")
	if _, err := store.SaveSealed(path, sealed); err != nil {
		t.Fatalf("SaveSealed: %v", err)
	}
	tbl, err := store.LoadSealed(path)
	if err != nil {
		t.Fatalf("LoadSealed: %v", err)
	}
	return tbl
}

func TestBuildSealedCoversConfiguredSpaces(t *testing.T) {
	tbl := buildTestSealed(t)
	sections := tbl.Sections()
	if len(sections) != 4 {
		t.Fatalf("got %d sections, want 4: %+v", len(sections), sections)
	}
	want := map[string]string{
		"cycles/k=2":     enumerate.CycleDomain,
		"paths/k=1":      enumerate.PathDomain,
		"rooted/d=1/k=1": rootedDomain(rooted.DefaultCensusRadius),
		"grid/d=1/k=1":   "decide/grid/1",
	}
	for _, sec := range sections {
		domain, ok := want[sec.Name]
		if !ok {
			t.Errorf("unexpected section %q", sec.Name)
			continue
		}
		if sec.Domain != domain {
			t.Errorf("section %q: domain = %q, want %q", sec.Name, sec.Domain, domain)
		}
		if sec.Entries == 0 {
			t.Errorf("section %q is empty", sec.Name)
		}
	}
	if tbl.Len() == 0 {
		t.Fatal("sealed table is empty")
	}
}

// TestSealedServesBitIdenticalToClassifier is the fallback criterion
// from both directions: for every sealed cycle representative, an
// engine with the table and an engine without it return identical
// verdicts — class, detail JSON, and payload — differing only in the
// serving metadata (Sealed, CacheHit).
func TestSealedServesBitIdenticalToClassifier(t *testing.T) {
	tbl := buildTestSealed(t)
	withSealed := New(Config{Sealed: tbl, DisableObs: true})
	defer withSealed.Close()
	without := New(Config{DisableObs: true})
	defer without.Close()

	requests := []Request{}
	// Every k=2 cycle mask problem (the whole space, not just the sealed
	// representatives: orbit members must resolve to sealed entries).
	pairSpace := uint(1) << uint(enumerate.PairCount(2))
	for n2 := uint(0); n2 < pairSpace; n2++ {
		for e := uint(0); e < pairSpace; e++ {
			requests = append(requests, Request{Mode: ModeCycles, Problem: enumerate.FromMasks(2, n2, e)})
		}
	}
	// A few k=1 path problems and k=1 grid problems.
	requests = append(requests,
		Request{Mode: ModePathsInputs, Problem: enumerate.FromPathMasks(1, 1, 1, 1)},
		Request{Mode: ModePathsInputs, Problem: enumerate.FromPathMasks(1, 0, 0, 0)},
		Request{Mode: ModeGrid, Dims: 1, Problem: enumerate.FromMasks(1, 1, 1)},
		Request{Mode: ModeGrid, Dims: 1, Problem: enumerate.FromMasks(1, 0, 0)},
	)

	hits := 0
	for _, req := range requests {
		a, err := withSealed.Classify(req)
		if err != nil {
			t.Fatalf("%s %s (sealed): %v", req.Mode, req.Problem.Name, err)
		}
		b, err := without.Classify(req)
		if err != nil {
			t.Fatalf("%s %s (classifier): %v", req.Mode, req.Problem.Name, err)
		}
		if a.Sealed {
			hits++
			if !a.CacheHit {
				t.Errorf("%s: sealed response without CacheHit", req.Problem.Name)
			}
		}
		if a.Class != b.Class {
			t.Errorf("%s: class %s (sealed) != %s (classifier)", req.Problem.Name, a.Class, b.Class)
		}
		aj, err := json.Marshal(a.Detail)
		if err != nil {
			t.Fatal(err)
		}
		bj, err := json.Marshal(b.Detail)
		if err != nil {
			t.Fatal(err)
		}
		if string(aj) != string(bj) {
			t.Errorf("%s: detail %s (sealed) != %s (classifier)", req.Problem.Name, aj, bj)
		}
		if !reflect.DeepEqual(a.Payload, b.Payload) {
			t.Errorf("%s: payloads differ:\n sealed: %#v\n classifier: %#v", req.Problem.Name, a.Payload, b.Payload)
		}
	}
	if hits != len(requests) {
		t.Errorf("%d of %d requests hit the sealed tier; the whole request set lies in sealed spaces", hits, len(requests))
	}
	if st := without.Stats(); st.Sealed != nil {
		t.Error("engine without a table reports sealed stats")
	}
}

// TestSealedMissFallsThrough drives traffic outside the sealed spaces
// through a sealed-table engine: every request computes normally (no
// panic, no wrong answers), the miss counter advances, and the response
// is not marked sealed.
func TestSealedMissFallsThrough(t *testing.T) {
	tbl := buildTestSealed(t)
	e := New(Config{Sealed: tbl})
	defer e.Close()

	// k=3 cycle problems are outside the sealed k=2 section.
	reqs := []Request{
		{Mode: ModeCycles, Problem: enumerate.FromMasks(3, 5, 9)},
		{Mode: ModeGrid, Dims: 2, Problem: enumerate.FromMasks(2, 1, 1)},
	}
	for _, req := range reqs {
		resp, err := e.Classify(req)
		if err != nil {
			t.Fatalf("%s %s: %v", req.Mode, req.Problem.Name, err)
		}
		if resp.Sealed {
			t.Errorf("%s: marked sealed but lies outside every sealed space", req.Problem.Name)
		}
	}
	st := e.Stats()
	if st.Sealed == nil {
		t.Fatal("Stats.Sealed is nil with a table loaded")
	}
	if st.Sealed.Misses != uint64(len(reqs)) {
		t.Errorf("sealed misses = %d, want %d", st.Sealed.Misses, len(reqs))
	}
	if st.Sealed.Hits != 0 {
		t.Errorf("sealed hits = %d, want 0", st.Sealed.Hits)
	}
	if st.Sealed.Entries != tbl.Len() {
		t.Errorf("stats entries = %d, table has %d", st.Sealed.Entries, tbl.Len())
	}

	// A repeat of a sealed-space request flips the hit counter.
	if resp, err := e.Classify(Request{Mode: ModeCycles, Problem: enumerate.FromMasks(2, 1, 1)}); err != nil {
		t.Fatal(err)
	} else if !resp.Sealed {
		t.Error("sealed-space request did not hit the table")
	}
	if st := e.Stats(); st.Sealed.Hits != 1 {
		t.Errorf("sealed hits = %d after one sealed-space request, want 1", st.Sealed.Hits)
	}
}

// TestSealedCorruptTableIsRefusedNotServed mirrors the lclserver -sealed
// load discipline: a damaged artifact yields a typed error, the engine
// starts without the tier, and serving works classifier-only.
func TestSealedCorruptTableIsRefusedNotServed(t *testing.T) {
	sealed, err := BuildSealed(SealConfig{CycleKs: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "landscape.lclseal")
	if _, err := store.SaveSealed(path, sealed); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in place; the load must fail typed, leaving
	// the operator to start without the tier.
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0x01
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.LoadSealed(path); !errors.Is(err, store.ErrSealedCorrupt) {
		t.Fatalf("LoadSealed of a damaged table: err = %v, want ErrSealedCorrupt", err)
	}

	e := New(Config{Sealed: nil, DisableObs: true})
	defer e.Close()
	resp, err := e.Classify(Request{Mode: ModeCycles, Problem: enumerate.FromMasks(1, 1, 1)})
	if err != nil {
		t.Fatalf("classifier-only serving failed: %v", err)
	}
	if resp.Sealed {
		t.Error("no table loaded but response marked sealed")
	}
}

// BenchmarkSealedLookup measures the sealed hit path against the warm
// memo-cache hit path over the same keys — the tier's reason to exist.
// The sealed sub-benchmark is CI's 0 allocs/op gate.
func BenchmarkSealedLookup(b *testing.B) {
	sealed, err := BuildSealed(SealConfig{CycleKs: []int{3}})
	if err != nil {
		b.Fatal(err)
	}
	buf, err := store.EncodeSealed(sealed)
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := store.OpenSealed(buf)
	if err != nil {
		b.Fatal(err)
	}
	var keys []uint64
	cache := memo.New(0, 0)
	for _, sec := range sealed.Sections {
		for _, e := range sec.Entries {
			k := memo.Key(sec.Domain, e.Fingerprint)
			keys = append(keys, k)
			cache.Put(k, e.Value)
		}
	}

	path := filepath.Join(b.TempDir(), "landscape.lclseal")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		b.Fatal(err)
	}
	mapped, err := store.OpenSealedMapped(path)
	if err != nil {
		b.Fatal(err)
	}
	defer mapped.Close()

	b.Run("sealed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := tbl.Get(keys[i%len(keys)]); !ok {
				b.Fatal("sealed miss on a sealed key")
			}
		}
	})
	b.Run("sealed-mmap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := mapped.Get(keys[i%len(keys)]); !ok {
				b.Fatal("mmap miss on a sealed key")
			}
		}
	})
	b.Run("memo", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := cache.Get(keys[i%len(keys)]); !ok {
				b.Fatal("memo miss on a warmed key")
			}
		}
	})
}
