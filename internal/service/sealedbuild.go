// The sharded sealed-table build: how `lcltool seal` scales to the
// k = 4 frontier and survives being killed.
//
// planSeal turns a SealConfig into a deterministic shard plan — purely
// a function of the config, never of worker count — partitioning each
// section's outer mask dimension into ranges. Workers claim shards from
// a pool; each shard classifies its orbit representatives in memory and
// writes one sorted "lclrun1" run file atomically. A build killed at
// any instant therefore leaves only complete, self-validating runs
// behind: resume re-validates each expected run and re-executes just
// the missing ones. The final artifact is produced by
// store.WriteSealedStream, which k-way merges each section's runs —
// the result is byte-identical regardless of worker count or
// interruption history, because shard boundaries, classification, and
// merge order are all deterministic and the created timestamp is
// pinned in the build manifest at first start.
//
// The build directory holds the manifest (plan hash + created stamp +
// a completed-shard ledger for observability) and the run files; it is
// removed once the artifact is renamed into place.

package service

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/canon"
	"repro/internal/classify"
	"repro/internal/enumerate"
	"repro/internal/grid"
	"repro/internal/rooted"
	"repro/internal/store"
)

// sealClassifyCycles is the cycle classifier the sharded build invokes
// — a seam so tests can count invocations and prove that resumed
// builds re-classify only the shards that were lost.
var sealClassifyCycles = classify.Cycles

// SealShardEvent reports one shard's completion during a build.
type SealShardEvent struct {
	// Section names the shard's section ("cycles/k=3").
	Section string
	// Shard and Shards are the shard's index and the build's total
	// shard count, across all sections.
	Shard, Shards int
	// Entries is the number of classified representatives in the shard.
	Entries int
	// Skipped reports a shard satisfied by a valid run file from an
	// earlier (interrupted) build instead of fresh classification.
	Skipped bool
}

// SealBuildResult summarizes a completed file build.
type SealBuildResult struct {
	Path        string                    `json:"path"`
	Bytes       int64                     `json:"bytes"`
	CreatedUnix int64                     `json:"created_unix"`
	Entries     int                       `json:"entries"`
	Sections    []store.SealedSectionInfo `json:"sections"`
	// Shards and SkippedShards count the plan's shards and how many
	// were satisfied by runs recovered from an interrupted build.
	Shards        int `json:"shards"`
	SkippedShards int `json:"skipped_shards"`
}

// ---------------------------------------------------------------------
// shard plan

// sealShardPlan is one unit of build work: a slice of one section's
// outer mask dimension (single-shard spaces use the full [0, 1) range).
type sealShardPlan struct {
	lo, hi uint
	// reps is the shard's known work size in progress ticks (0 when the
	// space only reports progress from inside its census sweep).
	reps int
	// run classifies the shard, emitting (fingerprint, verdict) pairs
	// and calling tick per unit of progress.
	run func(ctx context.Context, emit func(uint64, any) error, tick func(int)) error
}

// sealSectionPlan is one output section and its ordered shards.
type sealSectionPlan struct {
	name   string
	domain string
	kind   string
	total  int // progress denominator; 0 = inner census progress drives it
	shards []sealShardPlan
}

// sealShardTarget caps how many shards one section is split into. It
// is part of the canonical plan (and therefore of resume compatibility
// and byte-determinism), so it must never depend on worker count or
// machine shape.
const sealShardTarget = 32

// shardRanges splits [0, space) into at most sealShardTarget
// equal-width ranges.
func shardRanges(space uint) [][2]uint {
	n := uint(sealShardTarget)
	if space < n {
		n = space
	}
	if n == 0 {
		return nil
	}
	width := (space + n - 1) / n
	var out [][2]uint
	for lo := uint(0); lo < space; lo += width {
		hi := lo + width
		if hi > space {
			hi = space
		}
		out = append(out, [2]uint{lo, hi})
	}
	return out
}

// planSeal derives the deterministic shard plan for a config. Section
// order follows the config (cycles, paths, rooted, grid — the same
// order BuildSealed has always emitted).
func planSeal(cfg SealConfig) ([]sealSectionPlan, error) {
	var plan []sealSectionPlan

	for _, k := range cfg.CycleKs {
		k := k
		name := fmt.Sprintf("cycles/k=%d", k)
		if k < 1 || k > canon.MaxOrbitK {
			return nil, fmt.Errorf("seal %s: k out of supported range [1, %d]", name, canon.MaxOrbitK)
		}
		space := enumerate.CycleMaskSpace(k)
		sec := sealSectionPlan{name: name, domain: enumerate.CycleDomain, kind: store.KindCycles}
		for _, r := range shardRanges(space) {
			lo, hi := r[0], r[1]
			reps := enumerate.CycleRepCount(k, lo, hi)
			sec.total += reps
			sec.shards = append(sec.shards, sealShardPlan{lo: lo, hi: hi, reps: reps,
				run: func(ctx context.Context, emit func(uint64, any) error, tick func(int)) error {
					return enumerate.CycleRepRange(k, lo, hi, func(n2, e uint, orbit int) error {
						if err := ctx.Err(); err != nil {
							return err
						}
						p := enumerate.FromMasks(k, n2, e)
						fp, ok := enumerate.FastCycleFingerprint(p)
						if !ok {
							return fmt.Errorf("mask problem %s rejected by the fast fingerprinter", p.Name)
						}
						res, err := sealClassifyCycles(p)
						if err != nil {
							return fmt.Errorf("classify %s: %w", p.Name, err)
						}
						if err := emit(fp, res); err != nil {
							return err
						}
						tick(1)
						return nil
					})
				}})
		}
		plan = append(plan, sec)
	}

	for _, k := range cfg.PathKs {
		k := k
		name := fmt.Sprintf("paths/k=%d", k)
		sec := sealSectionPlan{name: name, domain: enumerate.PathDomain, kind: store.KindPaths}
		sec.shards = []sealShardPlan{{lo: 0, hi: 1,
			run: func(ctx context.Context, emit func(uint64, any) error, tick func(int)) error {
				decisions, err := enumerate.PathDecisions(k, enumerate.PathRunOpts{
					Ctx:      ctx,
					Progress: sectionProgress(cfg, name),
				})
				if err != nil {
					return err
				}
				for _, d := range decisions {
					if err := emit(d.Fingerprint, d.Result); err != nil {
						return err
					}
				}
				return nil
			}}}
		plan = append(plan, sec)
	}

	if len(cfg.Rooted) > 0 {
		radius := cfg.RootedRadius
		if radius <= 0 {
			radius = rooted.DefaultCensusRadius
		}
		for _, dk := range cfg.Rooted {
			delta, k := dk[0], dk[1]
			name := fmt.Sprintf("rooted/d=%d/k=%d", delta, k)
			sec := sealSectionPlan{name: name, domain: rootedDomain(radius), kind: store.KindRooted}
			sec.shards = []sealShardPlan{{lo: 0, hi: 1,
				run: func(ctx context.Context, emit func(uint64, any) error, tick func(int)) error {
					// The fingerprint dedup guard keeps a hash collision
					// from producing an ambiguous section; distinct mask
					// triples always hash apart in practice.
					seen := map[uint64]bool{}
					capture := func(p *rooted.Problem) (*rooted.Verdict, error) {
						v, err := rooted.ClassifyProblem(p, radius)
						if err != nil {
							return nil, err
						}
						if fp := p.Fingerprint(); !seen[fp] {
							seen[fp] = true
							if err := emit(fp, v); err != nil {
								return nil, err
							}
						}
						return v, nil
					}
					_, err := rooted.RunCensus(delta, k, rooted.CensusOpts{
						MaxRadius: radius, Ctx: ctx, Classify: capture,
						Progress: sectionProgress(cfg, name),
					})
					return err
				}}}
			plan = append(plan, sec)
		}
	}

	for _, k := range cfg.GridKs {
		k := k
		name := fmt.Sprintf("grid/d=1/k=%d", k)
		space := uint(1) << uint(enumerate.PairCount(k))
		gd := gridDecider{}
		domain := gd.MemoDomain(&Request{Mode: ModeGrid, Dims: 1})
		sec := sealSectionPlan{name: name, domain: domain, kind: store.KindGrid, total: int(space) * int(space)}
		for _, r := range shardRanges(space) {
			lo, hi := r[0], r[1]
			sec.shards = append(sec.shards, sealShardPlan{lo: lo, hi: hi, reps: int(hi-lo) * int(space),
				run: func(ctx context.Context, emit func(uint64, any) error, tick func(int)) error {
					seen := map[uint64]bool{}
					for n2 := lo; n2 < hi; n2++ {
						if err := ctx.Err(); err != nil {
							return err
						}
						for e := uint(0); e < space; e++ {
							req := Request{Mode: ModeGrid, Problem: enumerate.FromMasks(k, n2, e), Dims: 1}
							fp, _, err := gd.Fingerprint(&req)
							if err != nil {
								return err
							}
							tick(1)
							if seen[fp] {
								continue
							}
							seen[fp] = true
							v, err := grid.Classify(req.Problem, req.Dims)
							if err != nil {
								return fmt.Errorf("%s: %w", req.Problem.Name, err)
							}
							if err := emit(fp, v); err != nil {
								return err
							}
						}
					}
					return nil
				}})
		}
		plan = append(plan, sec)
	}

	return plan, nil
}

// sectionProgress adapts cfg.Progress to the (done, total) shape the
// single-shard census sweeps report themselves (nil when no progress
// sink is configured).
func sectionProgress(cfg SealConfig, name string) func(done, total int) {
	if cfg.Progress == nil {
		return nil
	}
	return func(done, total int) { cfg.Progress(name, done, total) }
}

// planHash fingerprints everything resume compatibility depends on:
// format version, section identities, and shard boundaries. Builds
// whose hashes differ must not share run files.
func planHash(plan []sealSectionPlan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "lclseal v%d target %d\n", store.SealedVersion, sealShardTarget)
	for _, sec := range plan {
		fmt.Fprintf(&b, "%s|%s|%s:", sec.name, sec.domain, sec.kind)
		for _, sh := range sec.shards {
			fmt.Fprintf(&b, " %d-%d", sh.lo, sh.hi)
		}
		b.WriteByte('\n')
	}
	h := fnv.New64a()
	h.Write([]byte(b.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// ---------------------------------------------------------------------
// shard execution (shared by the in-memory and file builds)

// sealTask is one scheduled shard.
type sealTask struct {
	section int // index into the plan
	shard   int // index within the section
	global  int // index across the whole plan
}

// runSealShards executes every task not excluded by skip over a worker
// pool, calling done with each shard's entries (in shard-local emit
// order). done runs on worker goroutines, possibly concurrently. The
// first error cancels the pool.
func runSealShards(ctx context.Context, cfg SealConfig, plan []sealSectionPlan,
	skip func(sealTask) bool, done func(sealTask, []store.SealedEntry) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Per-section progress for the sharded (known-total) spaces: shards
	// tick a shared per-section counter. Single-shard census spaces
	// report their own absolute (done, total) pairs from inside their
	// runners (sectionProgress) and never tick.
	counters := make([]atomic.Int64, len(plan))
	progress := func(section int, n int) {
		if n <= 0 {
			return
		}
		sec := &plan[section]
		d := counters[section].Add(int64(n))
		if cfg.Progress != nil && sec.total > 0 {
			cfg.Progress(sec.name, int(d), sec.total)
		}
	}

	var tasks []sealTask
	global := 0
	for si := range plan {
		for shi := range plan[si].shards {
			t := sealTask{section: si, shard: shi, global: global}
			global++
			if skip != nil && skip(t) {
				progress(si, plan[si].shards[shi].reps)
				continue
			}
			tasks = append(tasks, t)
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if len(tasks) == 0 {
		return ctx.Err()
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err; cancel() })
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				ti := int(next.Add(1)) - 1
				if ti >= len(tasks) {
					return
				}
				t := tasks[ti]
				sp := &plan[t.section].shards[t.shard]
				var entries []store.SealedEntry
				emit := func(fp uint64, v any) error {
					entries = append(entries, store.SealedEntry{Fingerprint: fp, Value: v})
					return nil
				}
				tick := func(n int) { progress(t.section, n) }
				if err := sp.run(ctx, emit, tick); err != nil {
					fail(fmt.Errorf("seal %s: %w", plan[t.section].name, err))
					return
				}
				if err := done(t, entries); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// ---------------------------------------------------------------------
// file build with checkpointed resume

// sealManifest is the build directory's checkpoint record. Shard
// completion itself is recovered from the run files (each one is
// written atomically and self-validates), so the manifest only pins
// what must stay fixed across resumes — the plan identity and the
// created stamp — plus a completed ledger for observability.
type sealManifest struct {
	Version     int            `json:"version"`
	PlanHash    string         `json:"plan_hash"`
	CreatedUnix int64          `json:"created_unix"`
	Completed   map[string]int `json:"completed,omitempty"` // run file -> entries
}

const (
	sealManifestVersion = 1
	sealManifestName    = "manifest.json"
)

// SealFileBuild is a prepared sharded build of one sealed artifact.
// Callers typically use BuildSealedFile; the jobs wiring in lcltool
// constructs one directly so the jobs manager's checkpoint hook can
// flush the manifest.
type SealFileBuild struct {
	path string
	cfg  SealConfig
	plan []sealSectionPlan
	dir  string

	mu       sync.Mutex
	manifest sealManifest
	dirty    bool
}

// shardRunName is the deterministic run-file name for a shard; it only
// encodes plan coordinates, so resumed builds find prior work by name.
func shardRunName(section, shard int) string {
	return fmt.Sprintf("s%02d-%02d.lclrun", section, shard)
}

// NewSealFileBuild plans the build and prepares the build directory
// (cfg.BuildDir, defaulting to path + ".build"). Without cfg.Resume
// any prior runs and manifest in the directory are discarded; with it,
// the existing manifest must match the plan (same config, same format
// version) and its created stamp is kept so the resumed artifact is
// byte-identical to an uninterrupted build.
func NewSealFileBuild(path string, cfg SealConfig) (*SealFileBuild, error) {
	plan, err := planSeal(cfg)
	if err != nil {
		return nil, err
	}
	dir := cfg.BuildDir
	if dir == "" {
		dir = path + ".build"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("seal: build dir: %w", err)
	}
	b := &SealFileBuild{path: path, cfg: cfg, plan: plan, dir: dir}
	hash := planHash(plan)

	prior, err := readSealManifest(dir)
	if err != nil {
		return nil, err
	}
	if cfg.Resume && prior != nil {
		if prior.PlanHash != hash {
			return nil, fmt.Errorf("seal: build dir %s was produced by a different seal configuration (plan %s, want %s); rebuild without -resume", dir, prior.PlanHash, hash)
		}
		b.manifest = *prior
		if b.manifest.Completed == nil {
			b.manifest.Completed = map[string]int{}
		}
		return b, nil
	}
	// Fresh build: drop any stale intermediates so they can never leak
	// into this artifact.
	if err := clearSealBuildDir(dir); err != nil {
		return nil, err
	}
	created := cfg.CreatedUnix
	if created == 0 {
		created = time.Now().Unix()
	}
	b.manifest = sealManifest{Version: sealManifestVersion, PlanHash: hash, CreatedUnix: created, Completed: map[string]int{}}
	b.dirty = true
	if err := b.Checkpoint(); err != nil {
		return nil, err
	}
	return b, nil
}

func readSealManifest(dir string) (*sealManifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, sealManifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("seal: read manifest: %w", err)
	}
	var m sealManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("seal: manifest %s is not valid JSON: %v", filepath.Join(dir, sealManifestName), err)
	}
	if m.Version != sealManifestVersion {
		return nil, fmt.Errorf("seal: manifest version %d, supported %d", m.Version, sealManifestVersion)
	}
	return &m, nil
}

// clearSealBuildDir removes the manifest and run files (only — the
// directory may be user-chosen, so nothing else is touched).
func clearSealBuildDir(dir string) error {
	names, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("seal: build dir: %w", err)
	}
	for _, de := range names {
		if de.Name() == sealManifestName || strings.HasSuffix(de.Name(), ".lclrun") {
			if err := os.Remove(filepath.Join(dir, de.Name())); err != nil {
				return fmt.Errorf("seal: build dir: %w", err)
			}
		}
	}
	return nil
}

// Dir returns the build directory holding the in-flight shard runs and
// manifest — where a -resume of this build looks for prior work.
func (b *SealFileBuild) Dir() string {
	return b.dir
}

// Shards returns the plan's total shard count.
func (b *SealFileBuild) Shards() int {
	n := 0
	for i := range b.plan {
		n += len(b.plan[i].shards)
	}
	return n
}

// CreatedUnix returns the artifact timestamp the build will stamp
// (pinned at first start, preserved across resumes).
func (b *SealFileBuild) CreatedUnix() int64 {
	return b.manifest.CreatedUnix
}

// Checkpoint persists the manifest if it has changed since the last
// save — the hook `lcltool seal` hands to the jobs manager's periodic
// checkpointer. Shard completions also flush it inline, so a kill at
// any point loses no more than in-flight (unwritten) shards.
func (b *SealFileBuild) Checkpoint() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.checkpointLocked()
}

func (b *SealFileBuild) checkpointLocked() error {
	if !b.dirty {
		return nil
	}
	raw, err := json.MarshalIndent(&b.manifest, "", "  ")
	if err != nil {
		return err
	}
	if err := writeSealManifest(filepath.Join(b.dir, sealManifestName), raw); err != nil {
		return fmt.Errorf("seal: write manifest: %w", err)
	}
	b.dirty = false
	return nil
}

// writeSealManifest writes atomically via a temp sibling, mirroring
// store.writeFileAtomic (unexported there).
func writeSealManifest(path string, raw []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Run executes the build: skip shards whose run files survived a prior
// interrupted build, classify the rest over the worker pool, then
// stream-merge everything into the artifact. On success the build
// directory is removed.
func (b *SealFileBuild) Run(ctx context.Context) (*SealBuildResult, error) {
	if ctx == nil {
		ctx = b.cfg.Ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	totalShards := b.Shards()
	var skipped atomic.Int64
	shardEntries := make(map[string]int, totalShards)
	var entriesMu sync.Mutex

	skip := func(t sealTask) bool {
		name := shardRunName(t.section, t.shard)
		n, err := store.ValidateSealedRun(filepath.Join(b.dir, name))
		if err != nil {
			return false
		}
		skipped.Add(1)
		entriesMu.Lock()
		shardEntries[name] = n
		entriesMu.Unlock()
		if b.cfg.ShardDone != nil {
			b.cfg.ShardDone(SealShardEvent{Section: b.plan[t.section].name, Shard: t.global, Shards: totalShards, Entries: n, Skipped: true})
		}
		return true
	}
	done := func(t sealTask, entries []store.SealedEntry) error {
		name := shardRunName(t.section, t.shard)
		if err := store.WriteSealedRun(filepath.Join(b.dir, name), b.plan[t.section].kind, entries); err != nil {
			return fmt.Errorf("seal %s: %w", b.plan[t.section].name, err)
		}
		entriesMu.Lock()
		shardEntries[name] = len(entries)
		entriesMu.Unlock()
		b.mu.Lock()
		b.manifest.Completed[name] = len(entries)
		b.dirty = true
		err := b.checkpointLocked()
		b.mu.Unlock()
		if err != nil {
			return err
		}
		if b.cfg.ShardDone != nil {
			b.cfg.ShardDone(SealShardEvent{Section: b.plan[t.section].name, Shard: t.global, Shards: totalShards, Entries: len(entries)})
		}
		return nil
	}
	if err := runSealShards(ctx, b.cfg, b.plan, skip, done); err != nil {
		// Leave the run files and manifest behind: they are the
		// checkpoint a -resume build picks up from.
		return nil, err
	}

	res := &SealBuildResult{
		Path:          b.path,
		CreatedUnix:   b.manifest.CreatedUnix,
		Shards:        totalShards,
		SkippedShards: int(skipped.Load()),
	}
	sections := make([]store.SealedRunSection, 0, len(b.plan))
	for si := range b.plan {
		sec := &b.plan[si]
		rs := store.SealedRunSection{Name: sec.name, Domain: sec.domain, Kind: sec.kind}
		n := 0
		for shi := range sec.shards {
			name := shardRunName(si, shi)
			rs.Runs = append(rs.Runs, filepath.Join(b.dir, name))
			n += shardEntries[name]
		}
		sections = append(sections, rs)
		res.Sections = append(res.Sections, store.SealedSectionInfo{Name: sec.name, Domain: sec.domain, Kind: sec.kind, Entries: n})
		res.Entries += n
	}
	size, err := store.WriteSealedStream(b.path, b.manifest.CreatedUnix, sections)
	if err != nil {
		return nil, err
	}
	res.Bytes = size
	if err := clearSealBuildDir(b.dir); err != nil {
		return nil, err
	}
	// Best-effort: the directory only goes away if nothing foreign
	// lives in it.
	os.Remove(b.dir)
	return res, nil
}

// BuildSealedFile runs a complete sharded, checkpointed, streaming
// build of the configured spaces into a sealed artifact at path. See
// NewSealFileBuild and SealFileBuild.Run for the resume and
// determinism contract.
func BuildSealedFile(path string, cfg SealConfig) (*SealBuildResult, error) {
	b, err := NewSealFileBuild(path, cfg)
	if err != nil {
		return nil, err
	}
	return b.Run(cfg.Ctx)
}
