// The registry registration file: the only place that names the
// engine's decision procedures. Each decider packages one procedure —
// its request validation and parameter defaults, its memo key domain
// (which also tags snapshot records, through the key), its computation,
// and the projection of its payload onto the shared complexity-class
// lattice (internal/decide). Adding a decision procedure to the whole
// service stack — POST /v1/classify, batches, memoization,
// singleflight, per-decider stats, snapshots, and (via the optional
// CensusRunner interface in jobs.go) resumable census jobs — is one
// entry in DefaultRegistry.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/decide"
	"repro/internal/enumerate"
	"repro/internal/grid"
	"repro/internal/memo"
	"repro/internal/rooted"
)

// The registered decider names. These are the values of a request's
// Mode field and the keys of the per-decider stats in /statsz.
const (
	// ModeCycles decides O(1) / Θ(log* n) / Θ(n) / unsolvable on
	// unoriented cycles (input-free problems only).
	ModeCycles = "cycles"
	// ModeTrees runs the Theorem 1.1 round-elimination gap pipeline on
	// trees and forests.
	ModeTrees = "trees"
	// ModePathsInputs decides solvability on all input-labeled paths.
	ModePathsInputs = "paths-inputs"
	// ModeSynthesize searches for an order-invariant constant-round
	// cycle algorithm (radii 0..MaxRadius).
	ModeSynthesize = "synthesize"
	// ModeRooted decides LCLs on δ-regular rooted trees: exact
	// solvability on every complete-tree depth plus anonymous
	// constant-radius synthesis (request.Rooted carries the problem).
	ModeRooted = "rooted"
	// ModeGrid decides LCLs on consistently oriented d-dimensional tori
	// (request.Dims): exact for d = 1 and for axis-factored
	// direction-labeled problems, sound and partial otherwise.
	ModeGrid = "grid"
)

// Defaults for per-decider search depths when a request leaves them
// zero.
const (
	DefaultMaxLevels    = 6 // round-elimination levels for trees
	DefaultMaxRadius    = 2 // synthesis radius cap for synthesize
	DefaultRootedRadius = rooted.DefaultCensusRadius
)

// DefaultRegistry builds the registry with all six deciders. Engines
// constructed without an explicit Config.Registry use it.
func DefaultRegistry() *decide.Registry {
	r := decide.NewRegistry()
	r.MustRegister(cyclesDecider{})
	r.MustRegister(treesDecider{})
	r.MustRegister(pathsDecider{})
	r.MustRegister(synthDecider{})
	r.MustRegister(rootedDecider{})
	r.MustRegister(gridDecider{})
	return r
}

// requireProblem is the shared Normalize core of the lcl-based deciders.
func requireProblem(req *decide.Request) error {
	if req.Problem == nil {
		return fmt.Errorf("service: %s: missing problem", req.Mode)
	}
	return nil
}

// ---------------------------------------------------------------------
// cycles

type cyclesDecider struct{}

func (cyclesDecider) Name() string { return ModeCycles }

func (cyclesDecider) Normalize(req *decide.Request) error { return requireProblem(req) }

// MemoDomain is shared with the cycle census (enumerate.RunWith), so
// census runs and API traffic warm each other.
func (cyclesDecider) MemoDomain(req *decide.Request) string { return enumerate.CycleDomain }

// Fingerprint takes the orbit-table fast path for mask-shaped problems
// (input-free, degree-2 configs, g = all outputs, k within the tables):
// the canonical fingerprint of such a problem is a pure function of its
// mask orbit, which enumerate resolves by table lookup against the
// shared mask-fingerprint cache — the same keys the census publishes,
// so census runs and API traffic keep warming each other. Everything
// else canonicalizes fully.
func (cyclesDecider) Fingerprint(req *decide.Request) (uint64, bool, error) {
	if req.Problem != nil {
		if fp, ok := enumerate.FastCycleFingerprint(req.Problem); ok {
			return fp, true, nil
		}
	}
	return decide.LCLFingerprint(req.Problem)
}

func (cyclesDecider) Compute(ctx context.Context, req *decide.Request) (any, error) {
	return classify.Cycles(req.Problem)
}

// cyclesDetail is the wire view of a cycle classification.
type cyclesDetail struct {
	Class   string `json:"class"`
	Period  int    `json:"period,omitempty"`
	Witness string `json:"witness,omitempty"`
}

func (cyclesDecider) WrapPayload(payload any) (*decide.Verdict, error) {
	res, ok := payload.(*classify.Result)
	if !ok {
		return nil, fmt.Errorf("unexpected payload %T", payload)
	}
	return &decide.Verdict{
		Class:  res.Class.Lattice(),
		Detail: &cyclesDetail{Class: res.Class.String(), Period: res.Period, Witness: res.Witness},
	}, nil
}

// ---------------------------------------------------------------------
// trees

type treesDecider struct{}

func (treesDecider) Name() string { return ModeTrees }

func (treesDecider) Normalize(req *decide.Request) error {
	if req.MaxLevels <= 0 {
		req.MaxLevels = DefaultMaxLevels
	}
	return requireProblem(req)
}

func (treesDecider) MemoDomain(req *decide.Request) string {
	return fmt.Sprintf("classify/trees/%d", req.MaxLevels)
}

func (treesDecider) Fingerprint(req *decide.Request) (uint64, bool, error) {
	return decide.LCLFingerprint(req.Problem)
}

func (treesDecider) Compute(ctx context.Context, req *decide.Request) (any, error) {
	return core.ClassifyOnTrees(req.Problem, req.MaxLevels)
}

// treesDetail is the wire view of a tree gap-pipeline verdict.
type treesDetail struct {
	Verdict    string `json:"verdict"`
	Constant   bool   `json:"constant"`
	LowerBound bool   `json:"lower_bound"`
	Level      int    `json:"level"`
}

func (treesDecider) WrapPayload(payload any) (*decide.Verdict, error) {
	v, ok := payload.(*core.TreeVerdict)
	if !ok {
		return nil, fmt.Errorf("unexpected payload %T", payload)
	}
	return &decide.Verdict{
		Class: v.Lattice(),
		Detail: &treesDetail{
			Verdict:    v.String(),
			Constant:   v.Constant,
			LowerBound: v.LowerBound,
			Level:      v.Level,
		},
	}, nil
}

// ---------------------------------------------------------------------
// paths-inputs

type pathsDecider struct{}

func (pathsDecider) Name() string { return ModePathsInputs }

func (pathsDecider) Normalize(req *decide.Request) error { return requireProblem(req) }

// MemoDomain is shared with the path census (enumerate.RunPathsWith).
func (pathsDecider) MemoDomain(req *decide.Request) string { return enumerate.PathDomain }

func (pathsDecider) Fingerprint(req *decide.Request) (uint64, bool, error) {
	return decide.LCLFingerprint(req.Problem)
}

func (pathsDecider) Compute(ctx context.Context, req *decide.Request) (any, error) {
	return classify.PathsWithInputs(req.Problem)
}

// pathsDetail is the wire view of a paths-with-inputs decision.
type pathsDetail struct {
	SolvableAllInputs bool  `json:"solvable_all_inputs"`
	BadInput          []int `json:"bad_input,omitempty"`
}

func (pathsDecider) WrapPayload(payload any) (*decide.Verdict, error) {
	res, ok := payload.(*classify.InputsResult)
	if !ok {
		return nil, fmt.Errorf("unexpected payload %T", payload)
	}
	// Solvability on all inputs does not pin a complexity; a bad input
	// certifies unsolvability outright.
	class := decide.Unsolvable
	if res.SolvableAllInputs {
		class = decide.Unknown
	}
	return &decide.Verdict{
		Class:  class,
		Detail: &pathsDetail{SolvableAllInputs: res.SolvableAllInputs, BadInput: res.BadInput},
	}, nil
}

// ---------------------------------------------------------------------
// synthesize

type synthDecider struct{}

func (synthDecider) Name() string { return ModeSynthesize }

func (synthDecider) Normalize(req *decide.Request) error {
	if req.MaxRadius <= 0 {
		req.MaxRadius = DefaultMaxRadius
	}
	return requireProblem(req)
}

func (synthDecider) MemoDomain(req *decide.Request) string {
	return fmt.Sprintf("classify/synth/%d", req.MaxRadius)
}

func (synthDecider) Fingerprint(req *decide.Request) (uint64, bool, error) {
	return decide.LCLFingerprint(req.Problem)
}

func (synthDecider) Compute(ctx context.Context, req *decide.Request) (any, error) {
	alg, radius, found, err := enumerate.Decide(req.Problem, req.MaxRadius)
	if err != nil {
		return nil, err
	}
	return &SynthOutcome{Algorithm: alg, Radius: radius, Found: found}, nil
}

// synthDetail is the wire view of a synthesis outcome.
type synthDetail struct {
	Found  bool `json:"found"`
	Radius int  `json:"radius"`
}

func (synthDecider) WrapPayload(payload any) (*decide.Verdict, error) {
	res, ok := payload.(*SynthOutcome)
	if !ok {
		return nil, fmt.Errorf("unexpected payload %T", payload)
	}
	// A synthesized algorithm certifies O(1); refutation is exhaustive
	// only for the searched radii.
	class := decide.Unknown
	if res.Found {
		class = decide.Constant
	}
	return &decide.Verdict{
		Class:  class,
		Detail: &synthDetail{Found: res.Found, Radius: res.Radius},
	}, nil
}

// ---------------------------------------------------------------------
// rooted

type rootedDecider struct{}

func (rootedDecider) Name() string { return ModeRooted }

func (rootedDecider) Normalize(req *decide.Request) error {
	if req.MaxRadius <= 0 {
		req.MaxRadius = DefaultRootedRadius
	}
	// Build once to validate eagerly; Fingerprint and Compute rebuild
	// (construction is cheap next to synthesis).
	_, err := rooted.FromSpec(req.Rooted)
	return err
}

func (rootedDecider) MemoDomain(req *decide.Request) string {
	return rootedDomain(req.MaxRadius)
}

// rootedDomain is shared with the rooted census runner (jobs.go), so
// census jobs and API traffic warm each other.
func rootedDomain(maxRadius int) string {
	return fmt.Sprintf("decide/rooted/%d", maxRadius)
}

// RootedMemoClassifier returns a rooted.CensusOpts.Classify function
// that memoizes every verdict in cache under the rooted decider's memo
// domain — the exact per-problem discipline the rooted census job and
// API traffic share. Exported so out-of-process harnesses (cmd/lclbench)
// measure the production discipline instead of re-implementing it.
func RootedMemoClassifier(cache *memo.Cache, maxRadius int) func(*rooted.Problem) (*rooted.Verdict, error) {
	if maxRadius <= 0 {
		maxRadius = DefaultRootedRadius
	}
	domain := rootedDomain(maxRadius)
	return func(p *rooted.Problem) (*rooted.Verdict, error) {
		key := memo.Key(domain, p.Fingerprint())
		if v, ok := cache.Get(key); ok {
			if verdict, ok := v.(*rooted.Verdict); ok {
				return verdict, nil
			}
		}
		v, err := rooted.ClassifyProblem(p, maxRadius)
		if err == nil {
			cache.Put(key, v)
		}
		return v, err
	}
}

// Fingerprint hashes the exact problem structure (label-spelling
// sensitive, order-insensitive); identical requests always share a key.
func (rootedDecider) Fingerprint(req *decide.Request) (uint64, bool, error) {
	p, err := rooted.FromSpec(req.Rooted)
	if err != nil {
		return 0, false, err
	}
	return p.Fingerprint(), true, nil
}

func (rootedDecider) Compute(ctx context.Context, req *decide.Request) (any, error) {
	p, err := rooted.FromSpec(req.Rooted)
	if err != nil {
		return nil, err
	}
	return rooted.ClassifyProblem(p, req.MaxRadius)
}

func (rootedDecider) WrapPayload(payload any) (*decide.Verdict, error) {
	v, ok := payload.(*rooted.Verdict)
	if !ok {
		return nil, fmt.Errorf("unexpected payload %T", payload)
	}
	return &decide.Verdict{Class: v.Class, Detail: v}, nil
}

// ---------------------------------------------------------------------
// grid

type gridDecider struct{}

func (gridDecider) Name() string { return ModeGrid }

func (gridDecider) Normalize(req *decide.Request) error {
	if req.Dims <= 0 {
		req.Dims = grid.DefaultDims
	}
	if req.Dims > grid.MaxDims {
		return fmt.Errorf("service: grid dims = %d out of range [1, %d]", req.Dims, grid.MaxDims)
	}
	return requireProblem(req)
}

func (gridDecider) MemoDomain(req *decide.Request) string {
	return fmt.Sprintf("decide/grid/%d", req.Dims)
}

// Fingerprint hashes the exact codec encoding rather than the canonical
// form: grid semantics pair input labels 2j/2j+1 into axes, and a
// canonical fingerprint identifies problems across input permutations
// that change the axis grouping — caching under it could serve the
// wrong answer. The exact hash is sound (identical encodings, identical
// answers) at the cost of not sharing entries across relabelings.
func (gridDecider) Fingerprint(req *decide.Request) (uint64, bool, error) {
	if req.Problem == nil {
		return 0, false, fmt.Errorf("service: grid: missing problem")
	}
	// Hash a name-blind copy: the name never changes the answer, and
	// including it would keep structurally identical requests from
	// sharing memo entries and singleflight.
	anon := *req.Problem
	anon.Name = ""
	raw, err := json.Marshal(&anon)
	if err != nil {
		return 0, false, err
	}
	h := fnv.New64a()
	h.Write(raw)
	return h.Sum64(), true, nil
}

func (gridDecider) Compute(ctx context.Context, req *decide.Request) (any, error) {
	return grid.Classify(req.Problem, req.Dims)
}

func (gridDecider) WrapPayload(payload any) (*decide.Verdict, error) {
	v, ok := payload.(*grid.Verdict)
	if !ok {
		return nil, fmt.Errorf("unexpected payload %T", payload)
	}
	return &decide.Verdict{Class: v.Class, Detail: v}, nil
}
