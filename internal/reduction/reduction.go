// Package reduction contains the color-reduction arithmetic shared by the
// LOCAL and VOLUME algorithm implementations: Linial's one-round palette
// reduction via polynomial (cover-free) families, and the Cole–Vishkin
// bit-difference step for oriented chains.
package reduction

import "fmt"

// LinialParams returns the smallest prime q (with its degree bound d) such
// that q > d·Δ and q^(d+1) >= m. One Linial round maps a proper m-coloring
// to a proper q²-coloring.
func LinialParams(m, delta int) (q, d int) {
	for q = 2; ; q++ {
		if !IsPrime(q) {
			continue
		}
		d = 0
		pow := q
		for pow < m {
			pow *= q
			d++
		}
		if q > d*delta {
			return q, d
		}
	}
}

// IsPrime is trial-division primality (palette parameters are tiny).
func IsPrime(x int) bool {
	if x < 2 {
		return false
	}
	for f := 2; f*f <= x; f++ {
		if x%f == 0 {
			return false
		}
	}
	return true
}

// PolyEval evaluates the base-q digit polynomial of color c at point a
// (mod q), using d+1 digits.
func PolyEval(c, a, q, d int) int {
	val, pw := 0, 1
	for i := 0; i <= d; i++ {
		digit := c % q
		c /= q
		val = (val + digit*pw) % q
		pw = (pw * a) % q
	}
	return val
}

// LinialStep maps a node's color and its neighbors' colors (all proper,
// palette [m]) to a new color in [q²], guaranteed proper: the node picks
// an evaluation point where its digit polynomial differs from every
// neighbor's; with q > dΔ such a point exists.
func LinialStep(c int, neighbors []int, m, delta int) (newColor, newPalette int) {
	q, d := LinialParams(m, delta)
	for a := 0; a < q; a++ {
		ok := true
		for _, nc := range neighbors {
			if nc == c {
				continue // tolerate improper inputs rather than stall
			}
			if PolyEval(c, a, q, d) == PolyEval(nc, a, q, d) {
				ok = false
				break
			}
		}
		if ok {
			return a*q + PolyEval(c, a, q, d), q * q
		}
	}
	panic(fmt.Sprintf("reduction: no evaluation point (m=%d q=%d d=%d)", m, q, d))
}

// LinialRounds returns the number of Linial rounds needed to shrink
// palette m to its fixed point, together with the fixed-point palette
// size (for Δ=2 this is 49).
func LinialRounds(m, delta int) (rounds, finalPalette int) {
	for {
		q, _ := LinialParams(m, delta)
		if q*q >= m {
			return rounds, m
		}
		m = q * q
		rounds++
	}
}

// CVStep is the Cole–Vishkin "lowest differing bit" reduction for a node
// and its chain successor; colors must differ.
func CVStep(c, parent int) int {
	diff := c ^ parent
	i := 0
	for diff&1 == 0 {
		diff >>= 1
		i++
	}
	return 2*i + (c>>i)&1
}

// CVRounds returns the rounds needed for CV to reduce palette m to the
// 6-color fixed point on oriented chains.
func CVRounds(m int) int {
	rounds := 0
	for m > 6 {
		b := 0
		for x := m - 1; x > 0; x >>= 1 {
			b++
		}
		m = 2 * b
		rounds++
	}
	return rounds
}
