package reduction

import (
	"testing"
	"testing/quick"
)

func TestLinialParamsSane(t *testing.T) {
	for _, m := range []int{4, 10, 100, 1 << 20, 1 << 40} {
		for _, delta := range []int{2, 3, 5} {
			q, d := LinialParams(m, delta)
			if !IsPrime(q) || q <= d*delta {
				t.Errorf("LinialParams(%d,%d) = (%d,%d) invalid", m, delta, q, d)
			}
			pow := 1
			for i := 0; i <= d; i++ {
				pow *= q
			}
			if pow < m {
				t.Errorf("LinialParams(%d,%d): q^(d+1)=%d < m", m, delta, pow)
			}
		}
	}
}

func TestLinialStepProper(t *testing.T) {
	// Exhaustive properness: for every pair of distinct colors (c, nc) in a
	// small palette, the step keeps them distinct when each avoids the
	// other.
	m, delta := 30, 2
	for c := 0; c < m; c++ {
		for nc := 0; nc < m; nc++ {
			if c == nc {
				continue
			}
			a, pa := LinialStep(c, []int{nc}, m, delta)
			b, pb := LinialStep(nc, []int{c}, m, delta)
			if pa != pb {
				t.Fatalf("palettes differ: %d vs %d", pa, pb)
			}
			if a == b {
				t.Fatalf("LinialStep collides: c=%d nc=%d -> %d", c, nc, a)
			}
			if a < 0 || a >= pa {
				t.Fatalf("color %d outside palette %d", a, pa)
			}
		}
	}
}

func TestLinialStepTriples(t *testing.T) {
	// Degree-2 (path) case: middle node avoids both neighbors.
	m := 50
	f := func(cRaw, lRaw, rRaw uint8) bool {
		c, l, r := int(cRaw)%m, int(lRaw)%m, int(rRaw)%m
		if c == l || c == r {
			return true
		}
		nc, _ := LinialStep(c, []int{l, r}, m, 2)
		nl, _ := LinialStep(l, []int{c}, m, 2)
		nr, _ := LinialStep(r, []int{c}, m, 2)
		return nc != nl && nc != nr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLinialRoundsConverges(t *testing.T) {
	for _, m := range []int{10, 1000, 1 << 30} {
		rounds, final := LinialRounds(m, 2)
		if final > 25 && final != m {
			t.Errorf("LinialRounds(%d, 2): final palette %d", m, final)
		}
		if rounds > 8 {
			t.Errorf("LinialRounds(%d, 2) = %d rounds (should be log*-ish)", m, rounds)
		}
	}
	// The Δ=2 fixed point is 25.
	if _, final := LinialRounds(1<<30, 2); final != 25 {
		t.Errorf("Δ=2 fixed point = %d, want 25", final)
	}
	// Larger delta converges too.
	if rounds, _ := LinialRounds(1<<40, 5); rounds > 8 {
		t.Errorf("Δ=5 took %d rounds", rounds)
	}
}

func TestCVRoundsFixedPoint(t *testing.T) {
	if CVRounds(6) != 0 {
		t.Errorf("CVRounds(6) = %d, want 0", CVRounds(6))
	}
	if CVRounds(7) != 1 {
		t.Errorf("CVRounds(7) = %d, want 1", CVRounds(7))
	}
	if CVRounds(1<<40)-CVRounds(1<<20) > 2 {
		t.Errorf("CVRounds grows too fast")
	}
	if CVRounds(1<<62) > 8 {
		t.Errorf("CVRounds(2^62) = %d", CVRounds(1<<62))
	}
}

func TestCVStepChainInvariant(t *testing.T) {
	// The classic CV invariant: for a chain c -> p -> q with c != p and
	// p != q, the new colors of c and p differ.
	for c := 0; c < 64; c++ {
		for p := 0; p < 64; p++ {
			if p == c {
				continue
			}
			for q := 0; q < 64; q++ {
				if q == p {
					continue
				}
				if CVStep(c, p) == CVStep(p, q) {
					t.Fatalf("CV invariant broken: c=%d p=%d q=%d", c, p, q)
				}
			}
		}
	}
}

func TestCVStepRange(t *testing.T) {
	// From palette 6 the step stays within 6 colors.
	for c := 0; c < 6; c++ {
		for p := 0; p < 6; p++ {
			if c == p {
				continue
			}
			if nc := CVStep(c, p); nc < 0 || nc >= 6 {
				t.Fatalf("CVStep(%d,%d) = %d escapes the 6-palette", c, p, nc)
			}
		}
	}
}

func TestIsPrime(t *testing.T) {
	primes := map[int]bool{2: true, 3: true, 5: true, 7: true, 11: true, 13: true}
	for x := -2; x <= 14; x++ {
		if IsPrime(x) != primes[x] {
			t.Errorf("IsPrime(%d) = %v", x, IsPrime(x))
		}
	}
}

func TestPolyEvalDistinctPolynomials(t *testing.T) {
	// Two distinct colors yield digit polynomials differing somewhere.
	q, d := 5, 2
	for c1 := 0; c1 < 30; c1++ {
		for c2 := c1 + 1; c2 < 30; c2++ {
			same := true
			for a := 0; a < q; a++ {
				if PolyEval(c1, a, q, d) != PolyEval(c2, a, q, d) {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("colors %d and %d have identical polynomials", c1, c2)
			}
		}
	}
}
