package decide

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/lcl"
)

// stubDecider is the minimal Decider for registry tests.
type stubDecider struct{ name string }

func (d stubDecider) Name() string                   { return d.name }
func (d stubDecider) Normalize(req *Request) error   { return nil }
func (d stubDecider) MemoDomain(req *Request) string { return "stub" }
func (d stubDecider) Fingerprint(req *Request) (uint64, bool, error) {
	return 0, false, nil
}
func (d stubDecider) Compute(ctx context.Context, req *Request) (any, error) {
	return "payload", nil
}
func (d stubDecider) WrapPayload(payload any) (*Verdict, error) {
	if _, ok := payload.(string); !ok {
		return nil, fmt.Errorf("stub: unexpected payload %T", payload)
	}
	return &Verdict{Class: Unknown}, nil
}

func TestLCLFingerprintExactAndIsomorphismInvariant(t *testing.T) {
	a := lcl.NewBuilder("a", nil, []string{"x", "y"}).
		Node("x", "y").Edge("x", "y").MustBuild()
	b := lcl.NewBuilder("b", nil, []string{"y", "x"}).
		Node("y", "x").Edge("y", "x").MustBuild()
	fa, exactA, err := LCLFingerprint(a)
	if err != nil || !exactA {
		t.Fatalf("fingerprint a: %v exact=%v", err, exactA)
	}
	fb, _, err := LCLFingerprint(b)
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Fatalf("isomorphs disagree: %x vs %x", fa, fb)
	}
	if _, _, err := LCLFingerprint(nil); err == nil {
		t.Fatal("nil problem accepted")
	}
}
