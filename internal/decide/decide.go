package decide

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/canon"
	"repro/internal/lcl"
)

// Request is one classification request, shared by every decider. Mode
// names the registered decider; exactly one of Problem / Rooted carries
// the problem (which one depends on the decider), and the remaining
// fields are per-decider parameters a decider's Normalize validates and
// defaults.
type Request struct {
	// Mode is the registered decider name ("cycles", "trees",
	// "paths-inputs", "synthesize", "rooted", "grid", ...).
	Mode string
	// Problem is the node-edge-checkable LCL for the lcl-based deciders.
	Problem *lcl.Problem
	// Rooted is the rooted-tree problem spec for the "rooted" decider.
	Rooted *RootedProblem
	// MaxLevels bounds the trees round-elimination depth.
	MaxLevels int
	// MaxRadius bounds synthesis searches (synthesize, rooted).
	MaxRadius int
	// Dims is the grid dimension for the "grid" decider.
	Dims int
}

// RootedProblem is the transport-neutral spec of an LCL on δ-regular
// rooted trees (internal/rooted materializes it). It exists here — not
// as a *rooted.Problem field on Request — so internal/rooted can import
// this package for the shared lattice without a cycle.
type RootedProblem struct {
	Name    string         `json:"name,omitempty"`
	Delta   int            `json:"delta"`
	Labels  []string       `json:"labels"`
	Configs []RootedConfig `json:"configs"`
	// Leaf / Root restrict the labels allowed on leaves / the root;
	// empty means all labels allowed.
	Leaf []string `json:"leaf,omitempty"`
	Root []string `json:"root,omitempty"`
}

// RootedConfig is one allowed (parent : children) pattern.
type RootedConfig struct {
	Parent   string   `json:"parent"`
	Children []string `json:"children"`
}

// Verdict is the decider-independent view of a decision payload: the
// shared-lattice class plus a wire-ready, decider-specific detail.
type Verdict struct {
	// Class is the decided point of the shared complexity lattice.
	Class Class
	// Detail is the decider-specific result view. It must be JSON-
	// marshalable; the HTTP layer serializes it verbatim.
	Detail any
}

// Decider is one registered decision procedure. Implementations must be
// safe for concurrent use; Compute must be a pure function of the
// normalized request (the memo cache serves its result to isomorphic
// requests).
type Decider interface {
	// Name is the registry key and the request Mode that selects this
	// decider.
	Name() string
	// Normalize validates req and fills parameter defaults in place. A
	// non-nil error rejects the request before any counters or caches
	// are touched (the engine records it as an error only).
	Normalize(req *Request) error
	// MemoDomain returns the memo key domain for a normalized request:
	// the decider name plus every parameter that can change the answer,
	// so differently parameterized requests never alias. Snapshot
	// records inherit this tagging through the memo key.
	MemoDomain(req *Request) string
	// Fingerprint returns the cache fingerprint of the request's problem
	// and whether it is exact. An inexact fingerprint (canonical search
	// over budget) is never used as a cache key: isomorphic problems
	// agree on it, but non-isomorphic problems may collide.
	Fingerprint(req *Request) (fp uint64, exact bool, err error)
	// Compute runs the decision procedure and returns the payload the
	// memo cache stores. Payloads must be immutable once returned.
	Compute(ctx context.Context, req *Request) (any, error)
	// WrapPayload projects a payload previously returned by Compute (or
	// restored from a snapshot) onto the shared lattice. A payload of an
	// unexpected type is an explicit error — never a silent zero value.
	WrapPayload(payload any) (*Verdict, error)
}

// Registry maps decider names to deciders. The zero value is unusable;
// use NewRegistry. Registration order is preserved (Names).
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Decider
	names  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]Decider{}}
}

// Register adds a decider; duplicate and empty names are errors.
func (r *Registry) Register(d Decider) error {
	name := d.Name()
	if name == "" {
		return fmt.Errorf("decide: decider with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		return fmt.Errorf("decide: duplicate decider %q", name)
	}
	r.byName[name] = d
	r.names = append(r.names, name)
	return nil
}

// MustRegister is Register that panics on error; for static tables.
func (r *Registry) MustRegister(d Decider) {
	if err := r.Register(d); err != nil {
		panic(err)
	}
}

// Get returns the decider registered under name.
func (r *Registry) Get(name string) (Decider, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.byName[name]
	return d, ok
}

// Names returns the registered decider names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.names...)
}

// LCLFingerprint is the fingerprint implementation shared by every
// decider whose problem is a node-edge-checkable LCL: the canonical
// fingerprint under label isomorphism (internal/canon), exact when the
// canonical search stayed within budget.
func LCLFingerprint(p *lcl.Problem) (uint64, bool, error) {
	if p == nil {
		return 0, false, fmt.Errorf("decide: nil problem")
	}
	form, err := canon.Canonicalize(p)
	if err != nil {
		return 0, false, err
	}
	return form.Fingerprint(), form.Exact, nil
}
