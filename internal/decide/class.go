// Package decide is the unified dispatch layer over the reproduction's
// decision procedures: a shared complexity-class lattice that every
// decider's native verdict maps onto, a Decider interface describing one
// decision procedure (name, memo domain, computation, payload wrapping),
// and a registry the service layer dispatches through. Adding a decision
// procedure to the HTTP API is one Register call; the engine's caching,
// singleflight, per-decider stats, and snapshot tagging all key off the
// Decider methods.
//
// The lattice is the paper's landscape (Grunau–Rozhoň–Brandt, PODC 2022,
// Figure 1) flattened into one chain: across cycles, paths, trees
// (rooted and unrooted), and oriented grids the only complexities that
// occur are O(1), Θ(log* n), Θ(log n), Θ(n^{1/k}), and Θ(n), below them
// unsolvability, and above them the honest "unknown" for the directions
// that are undecidable (grids, Section 1.4) or open (Question 1.7) —
// deciders return sound verdicts and say "unknown" rather than guess.
package decide

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the rungs of the complexity-class lattice.
type Kind uint8

// The lattice rungs, bottom to top. KindNRoot is parameterized by the
// root exponent (Θ(n^{1/k})); all other kinds stand alone.
const (
	KindUnsolvable Kind = iota
	KindConstant
	KindLogStar
	KindLog
	KindNRoot
	KindLinear
	KindUnknown
)

// Class is one point of the shared complexity-class lattice. The zero
// value is Unsolvable (the lattice bottom). Class values are comparable
// with == and totally ordered by Cmp:
//
//	unsolvable < O(1) < Θ(log* n) < Θ(log n)
//	           < Θ(n^{1/k}) (larger k first) < Θ(n) < unknown
//
// Θ(n^{1/k}) values order by growth rate: Θ(n^{1/3}) < Θ(n^{1/2}).
// Unknown is the top: joining anything with "we could not decide"
// yields "we could not decide".
type Class struct {
	kind Kind
	// root is the k of Θ(n^{1/k}); zero except for KindNRoot.
	root int
}

// The parameter-free lattice points.
var (
	Unsolvable = Class{kind: KindUnsolvable}
	Constant   = Class{kind: KindConstant}
	LogStar    = Class{kind: KindLogStar}
	Log        = Class{kind: KindLog}
	Linear     = Class{kind: KindLinear}
	Unknown    = Class{kind: KindUnknown}
)

// NRoot returns the Θ(n^{1/k}) lattice point. k <= 1 normalizes to
// Linear (n^{1/1} = n), so NRoot(dims) is safe to call for any grid
// dimension.
func NRoot(k int) Class {
	if k <= 1 {
		return Linear
	}
	return Class{kind: KindNRoot, root: k}
}

// Kind returns the lattice rung.
func (c Class) Kind() Kind { return c.kind }

// Root returns the k of Θ(n^{1/k}), or 0 for every other kind.
func (c Class) Root() int { return c.root }

// Cmp orders the lattice: negative when c grows slower than d, zero on
// equality, positive when faster (with Unsolvable below everything and
// Unknown above everything).
func (c Class) Cmp(d Class) int {
	if c.kind != d.kind {
		return int(c.kind) - int(d.kind)
	}
	if c.kind != KindNRoot {
		return 0
	}
	// Larger root exponent = slower growth: Θ(n^{1/3}) < Θ(n^{1/2}).
	return d.root - c.root
}

// Less reports whether c grows strictly slower than d.
func (c Class) Less(d Class) bool { return c.Cmp(d) < 0 }

// Join returns the least upper bound of c and d — the lattice is a
// chain, so the join is the maximum. Joining with Unknown is Unknown:
// an undecided component makes the combination undecided.
func (c Class) Join(d Class) Class {
	if c.Cmp(d) >= 0 {
		return c
	}
	return d
}

// Meet returns the greatest lower bound of c and d (the minimum).
func (c Class) Meet(d Class) Class {
	if c.Cmp(d) <= 0 {
		return c
	}
	return d
}

// String renders the class in the spelling the rest of the repository
// (census tables, the HTTP API, snapshots) uses. ParseClass inverts it.
func (c Class) String() string {
	switch c.kind {
	case KindUnsolvable:
		return "unsolvable"
	case KindConstant:
		return "O(1)"
	case KindLogStar:
		return "Θ(log* n)"
	case KindLog:
		return "Θ(log n)"
	case KindNRoot:
		return fmt.Sprintf("Θ(n^{1/%d})", c.root)
	case KindLinear:
		return "Θ(n)"
	default:
		return "unknown"
	}
}

// ParseClass inverts String. It accepts exactly the strings String
// produces (Θ(n^{1/k}) for any k >= 2) and fails on everything else.
func ParseClass(s string) (Class, error) {
	switch s {
	case "unsolvable":
		return Unsolvable, nil
	case "O(1)":
		return Constant, nil
	case "Θ(log* n)":
		return LogStar, nil
	case "Θ(log n)":
		return Log, nil
	case "Θ(n)":
		return Linear, nil
	case "unknown":
		return Unknown, nil
	}
	if rest, ok := strings.CutPrefix(s, "Θ(n^{1/"); ok {
		if num, ok := strings.CutSuffix(rest, "})"); ok {
			k, err := strconv.Atoi(num)
			if err == nil && k >= 2 {
				return NRoot(k), nil
			}
		}
	}
	return Class{}, fmt.Errorf("decide: unparseable class %q", s)
}

// MarshalText renders the class for JSON/text codecs (the wire `class`
// field and snapshot records round-trip through it).
func (c Class) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText parses a class previously rendered by MarshalText.
func (c *Class) UnmarshalText(b []byte) error {
	parsed, err := ParseClass(string(b))
	if err != nil {
		return err
	}
	*c = parsed
	return nil
}

// All returns representative lattice points in ascending order, with
// NRoot sampled at the given exponents (useful for exhaustive tests and
// docs). Exponents <= 1 are ignored.
func All(rootExponents ...int) []Class {
	out := []Class{Unsolvable, Constant, LogStar, Log}
	seen := map[int]bool{}
	ks := append([]int(nil), rootExponents...)
	for i := 0; i < len(ks); i++ {
		for j := i + 1; j < len(ks); j++ {
			if ks[j] > ks[i] {
				ks[i], ks[j] = ks[j], ks[i]
			}
		}
	}
	for _, k := range ks {
		if k >= 2 && !seen[k] {
			seen[k] = true
			out = append(out, NRoot(k))
		}
	}
	return append(out, Linear, Unknown)
}
