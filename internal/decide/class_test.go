package decide

import (
	"encoding/json"
	"testing"
)

// lattice is the sample every property test quantifies over: all
// parameter-free points plus Θ(n^{1/k}) for k in {2, 3, 5}.
func lattice() []Class { return All(2, 3, 5) }

func TestClassOrderingIsTheLandscapeChain(t *testing.T) {
	cs := lattice()
	for i := 1; i < len(cs); i++ {
		if !cs[i-1].Less(cs[i]) {
			t.Fatalf("%v not < %v", cs[i-1], cs[i])
		}
		if cs[i].Less(cs[i-1]) {
			t.Fatalf("%v < %v", cs[i], cs[i-1])
		}
	}
	// Spot checks anchoring the chain to the landscape.
	if !Unsolvable.Less(Constant) || !Constant.Less(LogStar) || !LogStar.Less(Log) {
		t.Fatal("bottom of the chain out of order")
	}
	if !NRoot(3).Less(NRoot(2)) {
		t.Fatal("Θ(n^{1/3}) should grow slower than Θ(n^{1/2})")
	}
	if !Log.Less(NRoot(100)) || !NRoot(2).Less(Linear) || !Linear.Less(Unknown) {
		t.Fatal("top of the chain out of order")
	}
	if NRoot(1) != Linear || NRoot(0) != Linear {
		t.Fatal("NRoot(k <= 1) should normalize to Linear")
	}
}

func TestJoinLatticeLaws(t *testing.T) {
	cs := lattice()
	for _, a := range cs {
		if a.Join(a) != a {
			t.Fatalf("join not idempotent at %v", a)
		}
		if a.Join(Unsolvable) != a || Unsolvable.Join(a) != a {
			t.Fatalf("Unsolvable not the join identity at %v", a)
		}
		if a.Join(Unknown) != Unknown {
			t.Fatalf("Unknown not absorbing at %v", a)
		}
		for _, b := range cs {
			if a.Join(b) != b.Join(a) {
				t.Fatalf("join not commutative: %v, %v", a, b)
			}
			if a.Meet(b) != b.Meet(a) {
				t.Fatalf("meet not commutative: %v, %v", a, b)
			}
			// Absorption ties join and meet together.
			if a.Join(a.Meet(b)) != a || a.Meet(a.Join(b)) != a {
				t.Fatalf("absorption fails: %v, %v", a, b)
			}
			for _, c := range cs {
				if a.Join(b).Join(c) != a.Join(b.Join(c)) {
					t.Fatalf("join not associative: %v, %v, %v", a, b, c)
				}
				// Monotone: a <= b implies a ∨ c <= b ∨ c.
				if a.Cmp(b) <= 0 && a.Join(c).Cmp(b.Join(c)) > 0 {
					t.Fatalf("join not monotone: %v <= %v but %v ∨ %v > %v ∨ %v", a, b, a, c, b, c)
				}
			}
		}
	}
}

func TestClassStringParseRoundTrip(t *testing.T) {
	for _, c := range lattice() {
		got, err := ParseClass(c.String())
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", c.String(), err)
		}
		if got != c {
			t.Fatalf("round trip %v -> %q -> %v", c, c.String(), got)
		}
	}
	for _, bad := range []string{"", "O(n)", "Θ(n^{1/1})", "Θ(n^{1/x})", "Θ(n^{1/-3})", "theta(n)"} {
		if _, err := ParseClass(bad); err == nil {
			t.Fatalf("ParseClass(%q) accepted", bad)
		}
	}
}

func TestClassJSONRoundTrip(t *testing.T) {
	for _, c := range lattice() {
		raw, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		var got Class
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		if got != c {
			t.Fatalf("JSON round trip %v -> %s -> %v", c, raw, got)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Get("cycles"); ok {
		t.Fatal("empty registry resolved a name")
	}
	d := stubDecider{name: "stub"}
	if err := r.Register(d); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(d); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := r.Register(stubDecider{name: ""}); err == nil {
		t.Fatal("empty name accepted")
	}
	got, ok := r.Get("stub")
	if !ok || got.Name() != "stub" {
		t.Fatalf("Get: %v, %v", got, ok)
	}
	if names := r.Names(); len(names) != 1 || names[0] != "stub" {
		t.Fatalf("Names: %v", names)
	}
}
